#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "canbus/bus.hpp"
#include "canbus/can_types.hpp"
#include "canbus/controller.hpp"
#include "canbus/frame.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/time_types.hpp"

/// \file attack.hpp
/// Adversarial workloads on the bus — the attack side of the robustness
/// layer (the detector side lives in trace/detectors.hpp).
///
/// The paper's fault model (fault.hpp) is benign: transmissions get
/// corrupted, but nobody *lies*. An adversary on a CAN bus can do strictly
/// more: inject frames under forged identifiers (spoofing a legitimate
/// publisher steals its arbitration slot and corrupts consumer state),
/// flood fuzzed identifiers, replay previously observed traffic, and
/// silence a compromised node so its streams vanish (message suspension).
/// These are the four timing-visible attack families of the CAN anomaly
/// detection literature (Pollicino/Stabili/Marchetti, arXiv 2307.04561),
/// reproduced here as first-class scenario ingredients.
///
/// Design rules:
///  * Attacks go through the REAL submission path. Every injected frame is
///    submitted to a CanController attached to the victim bus, competes in
///    CSMA/CR arbitration and occupies exact stuffed wire time — an attack
///    cannot do anything the bus physics would not allow. (Same-identifier
///    arbitration collisions are defined behavior; see bus.hpp.)
///  * Determinism: attack timing is derived exclusively from the segment's
///    simulated clock and an explicitly seeded Rng — never a wall clock —
///    so attack scenarios stay bit-identical across shard/thread counts,
///    the property every differential test in this repo leans on.
///  * Bounded state: the replay attack records up to a configured cap.
///
/// Lifecycle: construct an attack with its Config, then arm() it once with
/// an AttackContext (Scenario::install_attack does both and owns the
/// pieces). arm() schedules all activity; the context outlives the attack.

namespace rtec {

/// Everything an armed attack may touch. All referenced objects must
/// outlive the attack; `attacker` is a controller attached to `bus` whose
/// NodeId is the adversary's own (forged identifiers are per-frame).
struct AttackContext {
  Simulator* sim = nullptr;
  CanBus* bus = nullptr;
  CanController* attacker = nullptr;
  /// Seed for this attack's private Rng stream.
  std::uint64_t seed = 0;
  /// Looks up another controller on the SAME segment by node id (used by
  /// message suspension to silence its victim); may be empty when no
  /// victim lookup is available.
  std::function<CanController*(NodeId)> victim_controller;
};

/// One adversarial behavior. Implementations schedule all their activity
/// in arm() and keep online counters; they never buffer unbounded state.
class AttackModel {
 public:
  virtual ~AttackModel() = default;

  AttackModel() = default;
  AttackModel(const AttackModel&) = delete;
  AttackModel& operator=(const AttackModel&) = delete;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Schedules the attack's activity on `ctx.sim`. Called exactly once.
  virtual void arm(const AttackContext& ctx) = 0;

  /// Frames handed to the attacker controller's submission path.
  [[nodiscard]] std::uint64_t frames_injected() const { return injected_; }
  /// Injected submissions that completed successfully on the wire.
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }

 protected:
  /// Submits one single-shot frame through the attacker controller and
  /// keeps the counters. Returns false when the controller refused
  /// (mailboxes full / bus-off — the attack is being throttled by the bus
  /// itself, which is part of the model).
  bool inject(const AttackContext& ctx, const CanFrame& frame);

 private:
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
};

/// Masquerade / targeted injection: periodically submits frames under a
/// forged identifier — typically the exact identifier of a legitimate
/// periodic stream, so the victim id's observed rate doubles and its
/// inter-arrival process collapses. With `period` well below the victim's
/// the same model is the study's "injection" (flooding) attack.
class SpoofingAttack final : public AttackModel {
 public:
  struct Config {
    std::uint32_t id = 0;  ///< full forged 29-bit identifier
    std::uint8_t dlc = 8;
    std::array<std::uint8_t, 8> data{};
    TimePoint from;
    TimePoint to;
    Duration period = Duration::milliseconds(10);
    /// Uniform per-injection phase noise in [0, jitter] after the nominal
    /// point (seeded).
    Duration jitter = Duration::zero();
  };

  explicit SpoofingAttack(Config cfg) : cfg_{cfg} {}

  [[nodiscard]] const char* name() const override { return "spoof"; }
  void arm(const AttackContext& ctx) override;

 private:
  void fire(const AttackContext& ctx, TimePoint slot);

  Config cfg_;
  Rng rng_{0};  ///< re-seeded from the context in arm()
};

/// Fuzzing / random injection: a Poisson stream of frames with seeded
/// random identifiers and payloads. Identifier fields are drawn inside the
/// configured bands; the defaults avoid the infrastructure etags (clock
/// sync, binding protocol) so the attack stresses timing, not parsers.
class FuzzingAttack final : public AttackModel {
 public:
  struct Config {
    TimePoint from;
    TimePoint to;
    /// Mean gap of the exponential inter-injection time.
    Duration mean_gap = Duration::milliseconds(5);
    std::uint8_t priority_min = 1;
    std::uint8_t priority_max = 255;
    std::uint16_t etag_min = 4;       ///< kFirstApplicationEtag
    std::uint16_t etag_max = 0x3fff;  ///< kMaxEtag
    bool forge_tx_node = true;  ///< random TxNode field vs attacker's own
  };

  explicit FuzzingAttack(Config cfg) : cfg_{cfg} {}

  [[nodiscard]] const char* name() const override { return "fuzz"; }
  void arm(const AttackContext& ctx) override;

 private:
  void fire(const AttackContext& ctx);

  Config cfg_;
  Rng rng_{0};  ///< re-seeded from the context in arm()
};

/// Replay: records successful frames matching an (match, mask) identifier
/// filter during [record_from, record_to), then re-submits the recorded
/// sequence starting at replay_at with the original relative spacing.
/// Recording is bounded by `max_frames`.
class ReplayAttack final : public AttackModel {
 public:
  struct Config {
    TimePoint record_from;
    TimePoint record_to;
    /// Start of the replayed sequence; must be >= record_to.
    TimePoint replay_at;
    std::uint32_t id_match = 0;  ///< accept when (id & mask) == (match & mask)
    std::uint32_t id_mask = 0;   ///< 0 = record everything
    std::size_t max_frames = 256;
  };

  explicit ReplayAttack(Config cfg) : cfg_{cfg} {}

  [[nodiscard]] const char* name() const override { return "replay"; }
  void arm(const AttackContext& ctx) override;

  /// Frames captured during the recording window (bounded by max_frames).
  [[nodiscard]] std::size_t frames_recorded() const { return tape_.size(); }

 private:
  struct Recorded {
    CanFrame frame;
    Duration offset;  ///< end-of-frame time relative to record_from
  };

  Config cfg_;
  std::vector<Recorded> tape_;
};

/// Message suspension: a compromised node stops transmitting for a window
/// — its periodic streams simply vanish from the bus (the timing anomaly
/// is the *absence* of traffic, the hardest case for inter-arrival
/// detectors). Modelled as the victim controller going offline at `from`
/// and rejoining at `to`; pending victim traffic is lost, exactly like a
/// crashed node in the paper's temporary-node-fault model.
class SuspensionAttack final : public AttackModel {
 public:
  struct Config {
    NodeId victim = 0;
    TimePoint from;
    TimePoint to;
  };

  explicit SuspensionAttack(Config cfg) : cfg_{cfg} {}

  [[nodiscard]] const char* name() const override { return "suspend"; }
  void arm(const AttackContext& ctx) override;

 private:
  Config cfg_;
};

}  // namespace rtec
