#include "canbus/controller.hpp"

#include <cassert>

#include "canbus/bus.hpp"
#include "sim/simulator.hpp"

namespace rtec {

CanController::CanController(Simulator& sim, NodeId node, Config cfg)
    : sim_{sim}, node_{node}, cfg_{cfg}, mailboxes_(cfg.tx_mailboxes) {
  assert(node <= kMaxNodeId);
  assert(cfg.tx_mailboxes > 0);
}

Expected<CanController::MailboxId, TxError> CanController::submit(
    const CanFrame& frame, TxMode mode, TxResultHandler on_result) {
  if (!online_) return Unexpected{TxError::kOffline};
  if (bus_off_) return Unexpected{TxError::kBusOff};
  if (frame.dlc > 8 ||
      (frame.extended ? frame.id > kMaxExtendedId : frame.id > kMaxBaseId))
    return Unexpected{TxError::kInvalidFrame};

  for (MailboxId mb = 0; mb < mailboxes_.size(); ++mb) {
    Mailbox& box = mailboxes_[mb];
    if (box.pending) continue;
    box.pending = true;
    box.transmitting = false;
    box.frame = frame;
    box.mode = mode;
    box.attempts = 0;
    box.wire_bits = -1;  // payload changed: invalidate the length cache
    box.on_result = std::move(on_result);
    invalidate_arb_cache();
    if (bus_ != nullptr) bus_->notify_tx_request();
    return mb;
  }
  return Unexpected{TxError::kNoFreeMailbox};
}

bool CanController::abort(MailboxId mb) {
  assert(mb < mailboxes_.size());
  Mailbox& box = mailboxes_[mb];
  if (!box.pending || box.transmitting) return false;
  box.pending = false;
  invalidate_arb_cache();
  return true;
}

bool CanController::rewrite_id(MailboxId mb, std::uint32_t new_id) {
  assert(mb < mailboxes_.size());
  Mailbox& box = mailboxes_[mb];
  if (!box.pending || box.transmitting) return false;
  assert(box.frame.extended ? new_id <= kMaxExtendedId : new_id <= kMaxBaseId);
  box.frame.id = new_id;
  box.wire_bits = -1;  // identifier bits feed stuffing + CRC: invalidate
  invalidate_arb_cache();
  if (bus_ != nullptr) bus_->notify_tx_request();  // may change arbitration order
  return true;
}

bool CanController::mailbox_pending(MailboxId mb) const {
  assert(mb < mailboxes_.size());
  return mailboxes_[mb].pending;
}

bool CanController::has_free_mailbox() const {
  for (const Mailbox& box : mailboxes_)
    if (!box.pending) return true;
  return false;
}

std::size_t CanController::pending_count() const {
  std::size_t n = 0;
  for (const Mailbox& box : mailboxes_)
    if (box.pending) ++n;
  return n;
}

void CanController::set_online(bool online) {
  if (online_ == online) return;
  online_ = online;
  if (!online) {
    // Crash: lose all pending traffic. A frame currently on the wire is
    // finished by the bus (the transceiver drives it to completion in this
    // model; a mid-frame crash would surface as a fault-model corruption).
    for (Mailbox& box : mailboxes_) {
      if (!box.transmitting) {
        box.pending = false;
        box.on_result = nullptr;
      }
    }
    invalidate_arb_cache();
  } else {
    tec_ = 0;
    rec_ = 0;
    bus_off_ = false;
    if (bus_ != nullptr) bus_->notify_tx_request();
  }
}

void CanController::reset_errors() {
  tec_ = 0;
  rec_ = 0;
  bus_off_ = false;
  if (bus_ != nullptr) bus_->notify_tx_request();
}

std::optional<CanController::MailboxId> CanController::arbitration_candidate()
    const {
  if (!online_ || bus_off_) return std::nullopt;
  if (!arb_cache_valid_) {
    std::optional<MailboxId> best;
    for (MailboxId mb = 0; mb < mailboxes_.size(); ++mb) {
      const Mailbox& box = mailboxes_[mb];
      if (!box.pending) continue;
      if (!best || box.frame.id < mailboxes_[*best].frame.id) best = mb;
    }
    arb_cache_ = best;
    arb_cache_valid_ = true;
  }
  return arb_cache_;
}

const CanFrame& CanController::mailbox_frame(MailboxId mb) const {
  assert(mb < mailboxes_.size() && mailboxes_[mb].pending);
  return mailboxes_[mb].frame;
}

int CanController::mailbox_attempts(MailboxId mb) const {
  assert(mb < mailboxes_.size());
  return mailboxes_[mb].attempts;
}

int CanController::mailbox_wire_bits(MailboxId mb) const {
  assert(mb < mailboxes_.size() && mailboxes_[mb].pending);
  const Mailbox& box = mailboxes_[mb];
  if (box.wire_bits < 0) box.wire_bits = frame_wire_bits(box.frame);
  return box.wire_bits;
}

void CanController::on_tx_started(MailboxId mb) {
  assert(mb < mailboxes_.size());
  Mailbox& box = mailboxes_[mb];
  assert(box.pending && !box.transmitting);
  box.transmitting = true;
  ++box.attempts;
}

void CanController::on_tx_completed(MailboxId mb, bool success, TimePoint now) {
  assert(mb < mailboxes_.size());
  Mailbox& box = mailboxes_[mb];
  assert(box.pending && box.transmitting);
  box.transmitting = false;

  if (success) {
    tec_ = tec_ > 0 ? tec_ - 1 : 0;
    release_mailbox(mb, true, now);
    return;
  }

  tec_ += 8;
  if (tec_ >= cfg_.bus_off_threshold) {
    enter_bus_off(now);
    return;
  }
  if (box.mode == TxMode::kSingleShot) {
    release_mailbox(mb, false, now);
  }
  // kAutoRetransmit: stays pending; the bus will re-arbitrate it.
}

void CanController::on_rx(const CanFrame& frame, TimePoint now) {
  if (!online_ || bus_off_) return;
  if (rec_ > 0) --rec_;  // good reception heals the counter (pre-filter)
  if (!accepts(frame.id)) return;
  for (const RxHandler& listener : rx_listeners_) listener(frame, now);
}

void CanController::on_rx_error() {
  if (!online_ || bus_off_) return;
  ++rec_;
}

bool CanController::accepts(std::uint32_t id) const {
  if (filters_.empty()) return true;
  for (const AcceptanceFilter& f : filters_)
    if ((id & f.mask) == (f.match & f.mask)) return true;
  return false;
}

void CanController::release_mailbox(MailboxId mb, bool success, TimePoint now) {
  Mailbox& box = mailboxes_[mb];
  const CanFrame frame = box.frame;
  // Move the handler out before invoking: the callback may resubmit into
  // this same mailbox.
  TxResultHandler handler = std::move(box.on_result);
  box.on_result = nullptr;
  box.pending = false;
  invalidate_arb_cache();
  if (handler) handler(mb, frame, success, now);
}

void CanController::enter_bus_off(TimePoint now) {
  bus_off_ = true;
  if (cfg_.auto_recovery_delay > Duration::zero()) {
    sim_.schedule_after(cfg_.auto_recovery_delay, [this] {
      if (bus_off_) reset_errors();
    });
  }
  // All pending traffic is lost; owners are informed so the middleware can
  // raise exceptions on the affected channels.
  for (MailboxId mb = 0; mb < mailboxes_.size(); ++mb) {
    Mailbox& box = mailboxes_[mb];
    if (box.pending) {
      box.transmitting = false;
      release_mailbox(mb, false, now);
    }
  }
}

}  // namespace rtec
