#include "time/sync.hpp"

#include <algorithm>
#include <cassert>

#include "util/bytes.hpp"

namespace rtec {

SyncMaster::SyncMaster(Simulator& sim, CanController& controller,
                       LocalClock& clock, SyncConfig cfg)
    : sim_{sim}, controller_{controller}, clock_{clock}, cfg_{cfg} {}

void SyncMaster::start() { start_at_local(clock_.now()); }

void SyncMaster::start_at_local(TimePoint first) {
  if (running_) return;
  running_ = true;
  next_local_ = first;
  timer_ = clock_.schedule_at_local(next_local_, [this] { run_round(); });
}

void SyncMaster::stop() {
  running_ = false;
  sim_.cancel(timer_);
}

void SyncMaster::run_round() {
  if (!running_) return;

  CanFrame ref;
  ref.id = cfg_.ref_frame_id;
  ref.dlc = 0;  // the event *is* the message; no payload needed
  // Auto-retransmit: a corrupted reference frame is simply retried; slaves
  // only ever timestamp a successfully delivered frame.
  (void)controller_.submit(
      ref, TxMode::kAutoRetransmit,
      [this](CanController::MailboxId, const CanFrame&, bool success,
             TimePoint) {
        if (!success) return;  // bus-off; round abandoned
        // The successful end-of-frame instant is the common event. Capture
        // the master's local reading and ship it in the follow-up frame.
        const TimePoint master_ts = clock_.now();
        CanFrame follow;
        follow.id = cfg_.followup_frame_id;
        follow.dlc = 8;
        store_le_i64({follow.data.data(), 8}, master_ts.ns());
        (void)controller_.submit(follow, TxMode::kAutoRetransmit);
        ++rounds_sent_;
      });

  next_local_ += cfg_.period;
  timer_ = clock_.schedule_at_local(next_local_, [this] { run_round(); });
}

SyncSlave::SyncSlave(Simulator& sim, CanController& controller,
                     LocalClock& clock, SyncConfig cfg)
    : sim_{sim}, clock_{clock}, cfg_{cfg} {
  controller.add_rx_listener(
      [this](const CanFrame& frame, TimePoint now) { on_frame(frame, now); });
}

void SyncSlave::on_frame(const CanFrame& frame, TimePoint) {
  if (frame.id == cfg_.ref_frame_id) {
    captured_local_ = clock_.now();
    return;
  }
  if (frame.id != cfg_.followup_frame_id || !captured_local_) return;
  if (frame.dlc != 8) return;  // malformed; ignore

  const TimePoint master_ts =
      TimePoint::from_ns(load_le_i64({frame.data.data(), 8}));
  const TimePoint own_ts = *captured_local_;
  captured_local_.reset();

  last_correction_ = master_ts - own_ts;

  if (cfg_.rate_correction && prev_master_ts_) {
    // Rate servo: once the offset is stepped out each round, the residual
    // step corrections equal -(rate error) * elapsed master time, so
    // err_ppb = -(Σ corrections)/(Σ dm). Estimating from the corrections
    // (rather than raw local intervals) keeps earlier steps from
    // contaminating the measurement; summing over a window of rounds
    // averages out the clock-tick quantization noise.
    const std::int64_t dm = (master_ts - *prev_master_ts_).ns();
    if (dm > 0) {
      window_corrections_ += last_correction_;
      window_span_ += Duration::nanoseconds(dm);
      ++window_rounds_;
      if (window_rounds_ >= cfg_.rate_window_rounds) {
        const std::int64_t err_ppb = -window_corrections_.ns() *
                                     1'000'000'000 / window_span_.ns();
        const std::int64_t step = std::clamp(
            -err_ppb, -cfg_.max_rate_step_ppb, cfg_.max_rate_step_ppb);
        clock_.adjust_rate(step);
        window_corrections_ = Duration::zero();
        window_span_ = Duration::zero();
        window_rounds_ = 0;
      }
    }
  }
  prev_master_ts_ = master_ts;
  prev_local_ts_ = own_ts;

  clock_.adjust(last_correction_);
  ++rounds_applied_;
}

Duration required_slot_gap(Duration granularity, std::int64_t drift_bound_ppb,
                           Duration resync_period) {
  const std::int64_t wander =
      resync_period.ns() / 1'000'000'000 * drift_bound_ppb +
      resync_period.ns() % 1'000'000'000 * drift_bound_ppb / 1'000'000'000;
  return (granularity + Duration::nanoseconds(wander)) * 2;
}

}  // namespace rtec
