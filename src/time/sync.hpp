#pragma once

#include <cstdint>
#include <optional>

#include "canbus/controller.hpp"
#include "sim/simulator.hpp"
#include "time/clock.hpp"
#include "util/time_types.hpp"

/// \file sync.hpp
/// Distributed clock synchronization over CAN, after Gergeleit & Streich
/// ("Implementing a distributed high-resolution real-time clock using the
/// CAN-bus", iCC 1994) — the "standard solution" the paper adopts for its
/// global time base.
///
/// Two-frame scheme per round:
///  1. The master broadcasts a *reference* frame. CAN delivers the frame's
///     final bit to every node at the same instant, so all nodes (including
///     the master) timestamp the same physical event with their local
///     clocks.
///  2. The master broadcasts a *follow-up* frame carrying its captured
///     timestamp. Each slave steps its clock by (master_ts - own_ts) and
///     optionally applies a rate-correction servo from consecutive rounds.
///
/// The residual precision — reading granularity plus drift accumulated over
/// one round — is what the HRT slot gap ΔG_min must cover; E9 measures it.

namespace rtec {

struct SyncConfig {
  Duration period = Duration::milliseconds(100);
  std::uint32_t ref_frame_id = 0x10;       ///< must win arbitration promptly
  std::uint32_t followup_frame_id = 0x11;  ///< sent right after the ref frame
  bool rate_correction = true;
  /// Clamp for each rate-servo step (ppb); keeps one noisy measurement
  /// from destabilizing the clock.
  std::int64_t max_rate_step_ppb = 50'000;
  /// The servo estimates the rate error from the step corrections summed
  /// over this many rounds. One round's estimate is dominated by the
  /// clock-tick quantization (1 us / round ~ 100 ppm); averaging over N
  /// rounds divides that noise by N, which matters when the clock must
  /// coast accurately after the master disappears.
  int rate_window_rounds = 8;
};

/// Master side: broadcasts reference/follow-up rounds on a timer.
class SyncMaster {
 public:
  SyncMaster(Simulator& sim, CanController& controller, LocalClock& clock,
             SyncConfig cfg);

  /// Starts periodic rounds; the first reference frame goes out immediately.
  /// Rounds are paced by the *master's* local clock (it is the reference),
  /// so when the round period equals the calendar round length the sync
  /// transmissions stay inside their reserved slot.
  void start();

  /// Starts periodic rounds with the first round at master-local `first`.
  void start_at_local(TimePoint first);

  void stop();

  [[nodiscard]] std::uint64_t rounds_sent() const { return rounds_sent_; }

 private:
  void run_round();

  Simulator& sim_;
  CanController& controller_;
  LocalClock& clock_;
  SyncConfig cfg_;
  Simulator::TimerHandle timer_;
  TimePoint next_local_;
  std::uint64_t rounds_sent_ = 0;
  bool running_ = false;
};

/// Slave side: listens for reference/follow-up pairs and disciplines the
/// local clock.
class SyncSlave {
 public:
  SyncSlave(Simulator& sim, CanController& controller, LocalClock& clock,
            SyncConfig cfg);

  [[nodiscard]] std::uint64_t rounds_applied() const { return rounds_applied_; }
  /// Offset applied in the most recent round (signed; magnitude indicates
  /// how far the clock had wandered since the previous round).
  [[nodiscard]] Duration last_correction() const { return last_correction_; }

 private:
  void on_frame(const CanFrame& frame, TimePoint now);

  Simulator& sim_;
  LocalClock& clock_;
  SyncConfig cfg_;
  std::optional<TimePoint> captured_local_;   ///< local ts of last ref frame
  std::optional<TimePoint> prev_master_ts_;   ///< for rate correction
  std::optional<TimePoint> prev_local_ts_;
  // Rate servo window state.
  Duration window_corrections_ = Duration::zero();
  Duration window_span_ = Duration::zero();
  int window_rounds_ = 0;
  std::uint64_t rounds_applied_ = 0;
  Duration last_correction_ = Duration::zero();
};

/// Minimum inter-slot gap the calendar must leave so that two adjacent slot
/// owners with worst-case clock disagreement cannot overlap:
/// 2 * (granularity + drift_bound * resync_period). The paper conservatively
/// budgets 40 µs.
[[nodiscard]] Duration required_slot_gap(Duration granularity,
                                         std::int64_t drift_bound_ppb,
                                         Duration resync_period);

}  // namespace rtec
