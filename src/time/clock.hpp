#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "util/time_types.hpp"

/// \file clock.hpp
/// Per-node local clock with offset, rate error (drift) and finite reading
/// granularity.
///
/// The paper's HRT reservation scheme rests on a global time base with a
/// known precision (it budgets a conservative ΔG_min = 40 µs gap between
/// slots). Nodes therefore never see perfect simulation time: all slot
/// timers and timestamps in the middleware go through a LocalClock, so
/// clock error propagates into slot timing exactly as it would on hardware,
/// and E9 can measure the achieved precision of the sync protocol.

namespace rtec {

class LocalClock {
 public:
  /// \param sim         simulation kernel supplying perfect time
  /// \param offset      initial offset of the local clock vs perfect time
  /// \param drift_ppb   rate error in parts per billion (positive = fast)
  /// \param granularity reading resolution (MCU timer tick); readings are
  ///                    truncated to multiples of this
  LocalClock(Simulator& sim, Duration offset, std::int64_t drift_ppb,
             Duration granularity = Duration::microseconds(1));

  /// Local clock reading at the current simulated instant (quantized to the
  /// reading granularity).
  [[nodiscard]] TimePoint now() const { return to_local(sim_.now()); }

  /// Local reading corresponding to perfect instant `perfect` (quantized).
  [[nodiscard]] TimePoint to_local(TimePoint perfect) const;

  /// Perfect instant at which this clock will read `local` (inverse of
  /// to_local up to quantization). Used to arm timers at local deadlines.
  [[nodiscard]] TimePoint to_perfect(TimePoint local) const;

  /// Steps the clock by `delta` (positive = forward), rebasing at now.
  void adjust(Duration delta);

  /// Adds `ppb_delta` to the clock rate (rate-correction servo), rebasing
  /// at now so past readings are unaffected.
  void adjust_rate(std::int64_t ppb_delta);

  [[nodiscard]] std::int64_t drift_ppb() const { return drift_ppb_; }
  [[nodiscard]] Duration granularity() const { return granularity_; }

  /// Arms a one-shot timer that fires when *this clock* reads `local_t`.
  Simulator::TimerHandle schedule_at_local(TimePoint local_t,
                                           Simulator::Callback cb);

  /// Cancels a timer previously armed through this clock.
  void cancel(Simulator::TimerHandle& h) { sim_.cancel(h); }

 private:
  [[nodiscard]] TimePoint to_local_raw(TimePoint perfect) const;

  Simulator& sim_;
  TimePoint base_perfect_;  ///< rebasing anchor (perfect timeline)
  TimePoint base_local_;    ///< local reading at base_perfect_
  std::int64_t drift_ppb_;
  Duration granularity_;
};

}  // namespace rtec
