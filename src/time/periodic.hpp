#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "time/clock.hpp"

/// \file periodic.hpp
/// Drift-free periodic task on a node's local clock.
///
/// Periodic application activities (sensor sampling, publishing into a
/// periodic HRT channel) must stay phase-locked to the synchronized global
/// time. Naively re-arming with `schedule_at_local(clock.now() + period)`
/// accumulates the clock's reading granularity every cycle (up to one tick
/// per period — a full slot's worth of phase slide over long runs).
/// PeriodicLocalTask instead advances an absolute local timeline
/// t0, t0+P, t0+2P, ... so quantization never accumulates.

namespace rtec {

class PeriodicLocalTask {
 public:
  PeriodicLocalTask(LocalClock& clock, Duration period,
                    std::function<void()> body)
      : clock_{clock}, period_{period}, body_{std::move(body)} {}

  PeriodicLocalTask(const PeriodicLocalTask&) = delete;
  PeriodicLocalTask& operator=(const PeriodicLocalTask&) = delete;
  ~PeriodicLocalTask() { stop(); }

  /// First execution immediately (at the current local time).
  void start() { start_at(clock_.now()); }

  /// First execution when the local clock reads `local_first`.
  void start_at(TimePoint local_first) {
    if (running_) return;
    running_ = true;
    next_ = local_first;
    arm();
  }

  void stop() {
    running_ = false;
    // Handle cancellation requires the simulator; LocalClock exposes it
    // via the timers it creates.
    clock_.cancel(timer_);
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t executions() const { return executions_; }

 private:
  void arm() {
    timer_ = clock_.schedule_at_local(next_, [this] {
      if (!running_) return;
      ++executions_;
      next_ += period_;
      arm();        // re-arm first: body may stop() or destroy state
      body_();
    });
  }

  LocalClock& clock_;
  Duration period_;
  std::function<void()> body_;
  TimePoint next_;
  Simulator::TimerHandle timer_;
  bool running_ = false;
  std::uint64_t executions_ = 0;
};

}  // namespace rtec
