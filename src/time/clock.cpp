#include "time/clock.hpp"

#include <cassert>

namespace rtec {

LocalClock::LocalClock(Simulator& sim, Duration offset, std::int64_t drift_ppb,
                       Duration granularity)
    : sim_{sim},
      base_perfect_{sim.now()},
      base_local_{sim.now() + offset},
      drift_ppb_{drift_ppb},
      granularity_{granularity} {
  assert(granularity > Duration::zero());
}

TimePoint LocalClock::to_local_raw(TimePoint perfect) const {
  const std::int64_t dt = (perfect - base_perfect_).ns();
  // local = base_local + dt * (1 + drift_ppb/1e9). dt stays below ~1e13 ns
  // (hours of simulated time between rebases) and |drift_ppb| below ~1e6,
  // so the product fits comfortably in int64.
  const std::int64_t skew = dt / 1'000'000'000 * drift_ppb_ +
                            dt % 1'000'000'000 * drift_ppb_ / 1'000'000'000;
  return base_local_ + Duration::nanoseconds(dt + skew);
}

TimePoint LocalClock::to_local(TimePoint perfect) const {
  const TimePoint raw = to_local_raw(perfect);
  const std::int64_t g = granularity_.ns();
  std::int64_t q = raw.ns() / g * g;
  if (raw.ns() < 0 && raw.ns() % g != 0) q -= g;  // truncate toward -inf
  return TimePoint::from_ns(q);
}

TimePoint LocalClock::to_perfect(TimePoint local) const {
  const std::int64_t dl = (local - base_local_).ns();
  // Invert dt * (1 + r) = dl with r = drift_ppb/1e9 by one fixed-point
  // refinement: dt0 = dl - skew(dl), dt = dl - skew(dt0). The residual is
  // O(r^2 * dl) < 1 ns for |r| <= 1e-3 and dl up to hours.
  const auto skew = [this](std::int64_t x) {
    return x / 1'000'000'000 * drift_ppb_ +
           x % 1'000'000'000 * drift_ppb_ / 1'000'000'000;
  };
  const std::int64_t dt0 = dl - skew(dl);
  return base_perfect_ + Duration::nanoseconds(dl - skew(dt0));
}

void LocalClock::adjust(Duration delta) {
  const TimePoint now_perfect = sim_.now();
  base_local_ = to_local_raw(now_perfect) + delta;
  base_perfect_ = now_perfect;
}

void LocalClock::adjust_rate(std::int64_t ppb_delta) {
  const TimePoint now_perfect = sim_.now();
  base_local_ = to_local_raw(now_perfect);
  base_perfect_ = now_perfect;
  drift_ppb_ += ppb_delta;
}

Simulator::TimerHandle LocalClock::schedule_at_local(TimePoint local_t,
                                                     Simulator::Callback cb) {
  TimePoint perfect = to_perfect(local_t);
  // A clock stepped forward may make a local deadline already past; fire
  // immediately in that case (as an MCU timer compare-match would).
  if (perfect < sim_.now()) perfect = sim_.now();
  return sim_.schedule_at(perfect, std::move(cb));
}

}  // namespace rtec
