#include "core/hrt_engine.hpp"

#include <algorithm>
#include <cassert>

#include "util/logging.hpp"

namespace rtec {

using literals::operator""_ns;

HrtEngine::HrtEngine(const NodeContext& ctx) : ctx_{ctx} {}

Expected<void, ChannelError> HrtEngine::announce(Subject subject, Etag etag,
                                                 const AttributeList& attrs,
                                                 ExceptionHandler on_exception) {
  if (ctx_.calendar == nullptr) return Unexpected{ChannelError::kNoReservation};
  if (publications_.contains(etag))
    return Unexpected{ChannelError::kAlreadyAnnounced};

  Publication pub;
  pub.subject = subject;
  pub.etag = etag;
  pub.on_exception = std::move(on_exception);

  // Bind to the offline reservations for (etag, this node).
  const Calendar& cal = *ctx_.calendar;
  for (std::size_t i = 0; i < cal.size(); ++i) {
    const SlotSpec& s = cal.slot(i);
    if (s.etag == etag && s.publisher == ctx_.node) pub.slots.push_back(i);
  }
  if (pub.slots.empty()) return Unexpected{ChannelError::kNoReservation};

  // The reservation defines the guaranteed properties; announce-time
  // attributes may only narrow them.
  const SlotSpec& first = cal.slot(pub.slots.front());
  pub.dlc = first.dlc;
  pub.omission_degree = first.fault.omission_degree;
  pub.periodic = first.periodic;
  if (const auto size = attrs.get<attr::MessageSize>()) {
    if (size->dlc < 0 || size->dlc > pub.dlc)
      return Unexpected{ChannelError::kInvalidAttribute};
    pub.dlc = size->dlc;
  }
  if (const auto rel = attrs.get<attr::Reliability>()) {
    if (rel->omission_degree > pub.omission_degree)
      return Unexpected{ChannelError::kInvalidAttribute};
    pub.omission_degree = rel->omission_degree;
  }
  if (attrs.has<attr::Sporadic>() && pub.periodic)
    return Unexpected{ChannelError::kInvalidAttribute};
  if (const auto periodic = attrs.get<attr::Periodic>()) {
    if (!pub.periodic) return Unexpected{ChannelError::kInvalidAttribute};
    // The declared period must match the reservation's actual rate
    // (round length x period_rounds) — a mismatch means the application
    // and the offline configuration disagree.
    const Duration slot_period =
        ctx_.calendar->config().round_length * first.period_rounds;
    if (periodic->period != slot_period)
      return Unexpected{ChannelError::kInvalidAttribute};
  }
  pub.suppress_on_success = !attrs.has<attr::AlwaysTransmitCopies>();

  pub.ready_timers.resize(pub.slots.size());
  auto [it, inserted] = publications_.emplace(etag, std::move(pub));
  assert(inserted);

  // Arm every owned slot from the current local time onward.
  const TimePoint now_local = ctx_.clock.now();
  for (std::size_t pos = 0; pos < it->second.slots.size(); ++pos)
    arm_slot(it->second, pos, now_local);
  return {};
}

Expected<void, ChannelError> HrtEngine::cancel_publication(Etag etag) {
  const auto it = publications_.find(etag);
  if (it == publications_.end())
    return Unexpected{ChannelError::kNotAnnounced};
  for (auto& t : it->second.ready_timers) ctx_.sim.cancel(t);
  ctx_.sim.cancel(it->second.deadline_timer);
  in_flight_events_.erase(etag);
  publications_.erase(it);
  return {};
}

Expected<void, ChannelError> HrtEngine::publish(Etag etag, Event event) {
  const auto it = publications_.find(etag);
  if (it == publications_.end())
    return Unexpected{ChannelError::kNotAnnounced};
  Publication& pub = it->second;
  if (event.size() > static_cast<std::size_t>(pub.dlc))
    return Unexpected{ChannelError::kPayloadTooLarge};

  event.attributes.timestamp = ctx_.clock.now();
  ++counters_.published;
  if (pub.next_event) {
    ++counters_.overwritten;
    raise(pub, ChannelError::kEventOverwritten);
  }
  pub.next_event = std::move(event);
  return {};
}

void HrtEngine::arm_slot(Publication& pub, std::size_t slot_pos,
                         TimePoint local_after) {
  const Calendar::Instance inst =
      ctx_.calendar->instance_at_or_after(pub.slots[slot_pos], local_after);
  const Etag etag = pub.etag;
  pub.ready_timers[slot_pos] =
      ctx_.clock.schedule_at_local(inst.ready, [this, etag, slot_pos, inst] {
        const auto it = publications_.find(etag);
        if (it == publications_.end()) return;  // publication cancelled
        on_slot_ready(it->second, slot_pos, inst);
      });
}

void HrtEngine::on_slot_ready(Publication& pub, std::size_t slot_pos,
                              Calendar::Instance inst) {
  if (pub.next_event) {
    Event event = std::move(*pub.next_event);
    pub.next_event.reset();
    pub.instance_active = true;
    pub.instance_sent = false;
    pub.attempts = 0;
    pub.current = inst;
    in_flight_events_[pub.etag] = event;
    submit_attempt(pub, event);

    const Etag etag = pub.etag;
    pub.deadline_timer =
        ctx_.clock.schedule_at_local(inst.deadline, [this, etag] {
          const auto it = publications_.find(etag);
          if (it == publications_.end()) return;
          Publication& p = it->second;
          if (p.instance_active && !p.instance_sent) {
            // The reserved window elapsed without a successful attempt:
            // the fault assumption was violated.
            p.instance_active = false;
            in_flight_events_.erase(etag);
            ++counters_.send_failed;
            raise(p, ChannelError::kTransmissionFailed);
          }
        });
  } else if (pub.periodic) {
    // The application failed to provide an event for a periodic slot.
    ++counters_.publish_missed;
    raise(pub, ChannelError::kPublishMissed);
  }
  // Sporadic slot without an event: legitimately unused; the reserved
  // window is reclaimed by lower-priority traffic automatically.

  arm_slot(pub, slot_pos, inst.ready + 1_ns);
}

void HrtEngine::submit_attempt(Publication& pub, const Event& event) {
  CanFrame frame;
  frame.id = encode_can_id({kHrtPriority, ctx_.node, pub.etag});
  frame.extended = true;
  frame.dlc = static_cast<std::uint8_t>(event.size());
  std::copy(event.content.begin(), event.content.end(), frame.data.begin());

  ++pub.attempts;
  const Etag etag = pub.etag;
  const auto result = ctx_.controller.submit(
      frame, TxMode::kSingleShot,
      [this, etag](CanController::MailboxId, const CanFrame&, bool success,
                   TimePoint) { on_tx_result(etag, success); });
  if (!result) {
    pub.instance_active = false;
    in_flight_events_.erase(etag);
    ++counters_.send_failed;
    raise(pub, result.error() == TxError::kBusOff ? ChannelError::kBusOff
                                                  : ChannelError::kTransmissionFailed);
  }
}

void HrtEngine::on_tx_result(Etag etag, bool success) {
  const auto it = publications_.find(etag);
  if (it == publications_.end()) return;
  Publication& pub = it->second;
  if (!pub.instance_active) return;

  if (success) {
    if (!pub.instance_sent) {
      // First success: the event is delivered everywhere.
      pub.instance_sent = true;
      ctx_.sim.cancel(pub.deadline_timer);
      ++counters_.sent_ok;
      counters_.retries += static_cast<std::uint64_t>(pub.attempts - 1);
      Logger::instance().logf(LogLevel::kDebug, ctx_.clock.now(), "hrt",
                              "etag %u sent (attempt %d)", etag, pub.attempts);
    }
    if (pub.suppress_on_success) {
      // CAN's consistency property: every operational node has the frame.
      // Stop here — redundant copies are suppressed and the remaining
      // window is reclaimed by lower-priority traffic (§3.2).
      pub.instance_active = false;
      in_flight_events_.erase(etag);
      return;
    }
    // Ablation (attr::AlwaysTransmitCopies): burn the rest of the
    // reservation like a pure-TDMA scheme would.
    if (pub.attempts <= pub.omission_degree) {
      const auto ev = in_flight_events_.find(etag);
      assert(ev != in_flight_events_.end());
      submit_attempt(pub, ev->second);
    } else {
      pub.instance_active = false;
      in_flight_events_.erase(etag);
    }
    return;
  }

  if (pub.instance_sent) {
    // Ablation mode: a redundant copy after the first success failed —
    // irrelevant for delivery; keep burning the remaining copies.
    if (pub.attempts <= pub.omission_degree) {
      const auto ev = in_flight_events_.find(etag);
      assert(ev != in_flight_events_.end());
      submit_attempt(pub, ev->second);
    } else {
      pub.instance_active = false;
      in_flight_events_.erase(etag);
    }
    return;
  }

  if (pub.attempts <= pub.omission_degree) {
    // Time redundancy: immediate resubmission at priority 0.
    const auto ev = in_flight_events_.find(etag);
    assert(ev != in_flight_events_.end());
    submit_attempt(pub, ev->second);
    return;
  }

  // More faults than the channel's assumed omission degree.
  pub.instance_active = false;
  ctx_.sim.cancel(pub.deadline_timer);
  in_flight_events_.erase(etag);
  ++counters_.send_failed;
  Logger::instance().logf(LogLevel::kWarn, ctx_.clock.now(), "hrt",
                          "etag %u fault assumption violated (%d attempts)",
                          etag, pub.attempts);
  raise(pub, ChannelError::kTransmissionFailed);
}

void HrtEngine::raise(const Publication& pub, ChannelError e) {
  if (pub.on_exception)
    pub.on_exception({e, pub.subject, ctx_.clock.now()});
}

Expected<HrtEngine::Subscription*, ChannelError> HrtEngine::subscribe(
    Subject subject, Etag etag, const AttributeList& attrs,
    NotificationHandler notify, ExceptionHandler on_exception) {
  if (ctx_.calendar == nullptr) return Unexpected{ChannelError::kNoReservation};

  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < ctx_.calendar->size(); ++i)
    if (ctx_.calendar->slot(i).etag == etag) slots.push_back(i);
  if (slots.empty()) return Unexpected{ChannelError::kNoReservation};

  const std::size_t capacity =
      attrs.get<attr::QueueCapacity>().value_or(attr::QueueCapacity{}).events;
  auto sub = std::make_unique<Subscription>(subject, etag, capacity);
  sub->local_only = attrs.has<attr::LocalOnly>();
  sub->notify = std::move(notify);
  sub->on_exception = std::move(on_exception);
  sub->watches.resize(slots.size());

  const TimePoint now_local = ctx_.clock.now();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    sub->watches[i].slot_index = slots[i];
    arm_watch(*sub, sub->watches[i], now_local);
  }

  subscriptions_.push_back(std::move(sub));
  return subscriptions_.back().get();
}

void HrtEngine::cancel_subscription(Subscription* sub) {
  if (sub == nullptr || sub->cancelled) return;
  sub->cancelled = true;
  for (auto& w : sub->watches) ctx_.sim.cancel(w.timer);
}

void HrtEngine::arm_watch(Subscription& sub, Subscription::SlotWatch& watch,
                          TimePoint local_after) {
  watch.current =
      ctx_.calendar->instance_at_or_after(watch.slot_index, local_after);
  watch.window_open = false;
  Subscription* sub_ptr = &sub;
  Subscription::SlotWatch* watch_ptr = &watch;
  watch.timer = ctx_.clock.schedule_at_local(
      watch.current.ready, [this, sub_ptr, watch_ptr] {
        if (sub_ptr->cancelled) return;
        open_watch(*sub_ptr, *watch_ptr);
      });
}

void HrtEngine::open_watch(Subscription& sub, Subscription::SlotWatch& watch) {
  watch.window_open = true;
  watch.arrival.reset();
  Subscription* sub_ptr = &sub;
  Subscription::SlotWatch* watch_ptr = &watch;
  watch.timer = ctx_.clock.schedule_at_local(
      watch.current.deadline, [this, sub_ptr, watch_ptr] {
        if (sub_ptr->cancelled) return;
        close_watch(*sub_ptr, *watch_ptr);
      });
}

void HrtEngine::close_watch(Subscription& sub, Subscription::SlotWatch& watch) {
  watch.window_open = false;
  const TimePoint now_local = ctx_.clock.now();
  if (watch.arrival) {
    // Jitter-free delivery: the event is released exactly at the delivery
    // deadline, independent of where in the window the frame landed.
    ++counters_.delivered;
    sub.deliver(std::move(*watch.arrival), now_local);
    watch.arrival.reset();
  } else if (ctx_.calendar->slot(watch.slot_index).periodic) {
    // The reservation tells the subscriber a message was due: its absence
    // is detectable locally (§2.2.1).
    ++counters_.missing;
    if (sub.on_exception)
      sub.on_exception({ChannelError::kMissingMessage, sub.subject, now_local});
  }
  arm_watch(sub, watch, watch.current.ready + 1_ns);
}

void HrtEngine::on_frame(const CanIdFields& fields, const CanFrame& frame,
                         TimePoint) {
  bool consumed = false;
  for (const auto& sub : subscriptions_) {
    if (sub->cancelled || sub->etag != fields.etag) continue;
    for (auto& watch : sub->watches) {
      if (!watch.window_open) continue;
      if (ctx_.calendar->slot(watch.slot_index).publisher != fields.tx_node)
        continue;
      Event event;
      event.subject = sub->subject;
      event.content.assign(frame.data.begin(), frame.data.begin() + frame.dlc);
      event.attributes.timestamp = ctx_.clock.now();
      watch.arrival = std::move(event);
      consumed = true;
      break;
    }
  }
  if (!consumed && !subscriptions_.empty()) {
    // A frame for a subscribed etag outside every window would indicate a
    // reservation violation or severe clock skew; only counted if anyone
    // here cares about the etag.
    for (const auto& sub : subscriptions_)
      if (!sub->cancelled && sub->etag == fields.etag) {
        ++counters_.stray_frames;
        break;
      }
  }
}

}  // namespace rtec
