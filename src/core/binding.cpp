#include "core/binding.hpp"

namespace rtec {

Expected<Etag, ChannelError> BindingRegistry::bind(Subject subject) {
  if (const auto it = by_subject_.find(subject); it != by_subject_.end())
    return it->second;
  if (next_ > kMaxEtag) return Unexpected{ChannelError::kBindingFailed};
  const Etag etag = next_++;
  by_subject_.emplace(subject, etag);
  by_etag_.emplace(etag, subject);
  return etag;
}

std::optional<Etag> BindingRegistry::lookup(Subject subject) const {
  const auto it = by_subject_.find(subject);
  if (it == by_subject_.end()) return std::nullopt;
  return it->second;
}

std::optional<Subject> BindingRegistry::subject_of(Etag etag) const {
  const auto it = by_etag_.find(etag);
  if (it == by_etag_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rtec
