#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/attributes.hpp"
#include "core/errors.hpp"
#include "core/event.hpp"
#include "core/node_context.hpp"
#include "core/subscription.hpp"
#include "sched/id_codec.hpp"
#include "util/expected.hpp"

/// \file nrt_engine.hpp
/// Non real-time event channels (paper §2.2.3): fixed low priorities in the
/// NRT band [251, 255] — so NRT frames only ever use bandwidth no RT
/// message wants — and a fragmentation mechanism that chains 8-byte CAN
/// frames into arbitrarily long application messages (ROM images,
/// electronic data sheets, test patterns).
///
/// Fragment wire format (data field):
///   byte 0  : [msg_id:4 | type:2 | reserved:2]
///             type: 0 = SINGLE, 1 = FIRST, 2 = MIDDLE, 3 = LAST
///   FIRST   : bytes 1..3 = total length (LE24), bytes 4..7 = payload
///   MID/LAST: bytes 1..7 = payload
///   SINGLE  : bytes 1..7 = payload (fragmented channel, small message)
/// CAN guarantees per-sender FIFO delivery, so fragments cannot reorder;
/// msg_id guards against a receiver joining mid-message or a sender
/// restart.

namespace rtec {

class NrtEngine {
 public:
  struct Counters {
    std::uint64_t published = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t send_failed = 0;
    std::uint64_t delivered = 0;
    std::uint64_t reassembly_failed = 0;
  };

  struct Subscription : SubscriptionBase {
    using SubscriptionBase::SubscriptionBase;
    bool fragmented = false;
    bool cancelled = false;

    struct Reassembly {
      std::uint8_t msg_id = 0;
      std::size_t expected = 0;
      std::vector<std::uint8_t> buffer;
      bool active = false;
    };
    /// Per-sender reassembly state (fragments of different senders
    /// interleave freely on the bus).
    std::map<NodeId, Reassembly> reassembly;
  };

  explicit NrtEngine(const NodeContext& ctx);

  /// `attrs` must carry attr::FixedPriority within the NRT band; an
  /// attr::Fragmentation entry makes the channel a bulk channel.
  Expected<void, ChannelError> announce(Subject subject, Etag etag,
                                        const AttributeList& attrs,
                                        ExceptionHandler on_exception);
  Expected<void, ChannelError> cancel_publication(Etag etag);

  /// Queues the event; bulk events are split into fragments here. All
  /// frames of one event are sent in order before the next event of the
  /// same channel starts.
  Expected<void, ChannelError> publish(Etag etag, Event event);

  Expected<Subscription*, ChannelError> subscribe(Subject subject, Etag etag,
                                                  const AttributeList& attrs,
                                                  NotificationHandler notify,
                                                  ExceptionHandler on_exception);
  void cancel_subscription(Subscription* sub);

  /// RX dispatch for frames in the NRT priority band.
  void on_frame(const CanIdFields& fields, const CanFrame& frame,
                TimePoint bus_time, bool remote_origin);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t backlog_frames() const;

 private:
  struct QueuedFrame {
    CanFrame frame;
    bool end_of_message = false;
  };

  struct Publication {
    Subject subject;
    Etag etag = 0;
    Priority priority = kNrtPriorityMax;
    bool fragmented = false;
    std::uint8_t next_msg_id = 0;
    ExceptionHandler on_exception;
    std::deque<QueuedFrame> backlog;
  };

  void pump();
  void on_tx_result(Etag etag, bool end_of_message, bool success);
  void fragment_into(Publication& pub, const Event& event);

  NodeContext ctx_;
  std::map<Etag, Publication> publications_;
  std::optional<Etag> in_flight_;  ///< channel whose frame occupies the mailbox
  std::vector<std::unique_ptr<Subscription>> subscriptions_;
  Counters counters_;
};

}  // namespace rtec
