#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/errors.hpp"
#include "core/event.hpp"

/// \file subscription.hpp
/// Subscriber-side event buffering: the "predefined memory area" of §2.2.1
/// in which the middleware stores an event before invoking the
/// application's notification handler, which then retrieves it with
/// getEvent().

namespace rtec {

/// Bounded FIFO of events with a capacity fixed at subscribe time.
class EventQueue {
 public:
  explicit EventQueue(std::size_t capacity) : buf_(capacity) {}

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// False (event dropped) when full — surfaced as kQueueOverflow.
  [[nodiscard]] bool push(Event e) {
    if (full()) return false;
    buf_[(head_ + size_) % buf_.size()] = std::move(e);
    ++size_;
    return true;
  }

  [[nodiscard]] std::optional<Event> pop() {
    if (empty()) return std::nullopt;
    Event e = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return e;
  }

 private:
  std::vector<Event> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// State common to subscriptions of every channel class.
struct SubscriptionBase {
  Subject subject;
  std::uint16_t etag = 0;
  bool local_only = false;
  EventQueue queue;
  NotificationHandler notify;
  ExceptionHandler on_exception;

  SubscriptionBase(Subject s, std::uint16_t tag, std::size_t queue_capacity)
      : subject{s}, etag{tag}, queue{queue_capacity} {}

  /// Stores + notifies; raises kQueueOverflow when the application is not
  /// draining fast enough.
  void deliver(Event e, TimePoint now) {
    if (!queue.push(std::move(e))) {
      if (on_exception)
        on_exception({ChannelError::kQueueOverflow, subject, now});
      return;
    }
    if (notify) notify();
  }
};

}  // namespace rtec
