#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "core/binding.hpp"
#include "core/node_context.hpp"
#include "sched/id_codec.hpp"
#include "util/expected.hpp"

/// \file binding_protocol.hpp
/// Runtime subject→etag binding over the bus itself — the mechanism behind
/// the configuration phase of Kaiser & Mock [13] whose *outcome* the
/// offline BindingRegistry models. During commissioning, a node that wants
/// to announce or subscribe to a subject it has no binding for asks the
/// configuration node (binding agent) over a reserved channel; the agent
/// assigns (or repeats) the etag and broadcasts the reply, so every cached
/// copy in the system stays consistent.
///
/// Wire format (NRT band, priority kBindingPriority — configuration is
/// exactly what NRT channels are for, §2.2.3):
///   request  (etag kBindingRequestEtag, TxNode = requester):
///       data[0..7] = subject uid, LE64
///   reply    (etag kBindingReplyEtag, TxNode = agent):
///       data[0]    = requester TxNode
///       data[1..2] = assigned etag, LE16
///       data[3]    = status (0 = ok, 1 = etag space exhausted)
///       data[4..7] = subject uid low 32 bits (request match check)
///
/// Clients serialize their outstanding requests and retry on timeout
/// (auto-retransmission already masks bus errors; the timeout covers an
/// absent or restarting agent).

namespace rtec {

inline constexpr Priority kBindingPriority = kNrtPriorityMin;  // 251

/// The configuration node's side: owns the authoritative map.
class BindingAgent {
 public:
  BindingAgent(const NodeContext& ctx, BindingRegistry& registry);

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  void on_frame(const CanFrame& frame, TimePoint now);

  NodeContext ctx_;
  BindingRegistry& registry_;
  std::uint64_t served_ = 0;
};

/// Any node's side: resolves subjects on demand and caches the results.
class BindingClient {
 public:
  using Callback = std::function<void(Expected<Etag, ChannelError>)>;

  struct Config {
    Duration timeout = Duration::milliseconds(50);
    int max_attempts = 3;
  };

  explicit BindingClient(const NodeContext& ctx)
      : BindingClient(ctx, Config{}) {}
  BindingClient(const NodeContext& ctx, Config cfg);

  /// Resolves `subject`, invoking `cb` with the etag (from cache
  /// immediately, or after the request/reply exchange). Concurrent
  /// resolves are queued and served one at a time.
  void resolve(Subject subject, Callback cb);

  /// Cache lookup without network traffic.
  [[nodiscard]] std::optional<Etag> cached(Subject subject) const;

  [[nodiscard]] std::uint64_t requests_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  struct PendingRequest {
    Subject subject;
    Callback cb;
    int attempts = 0;
  };

  void on_frame(const CanFrame& frame, TimePoint now);
  void pump();
  void send_request();
  void on_timeout();
  void finish(Expected<Etag, ChannelError> result);

  NodeContext ctx_;
  Config cfg_;
  std::map<Subject, Etag> cache_;
  std::deque<PendingRequest> queue_;
  std::optional<PendingRequest> active_;
  Simulator::TimerHandle timeout_timer_;
  std::uint64_t sent_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace rtec
