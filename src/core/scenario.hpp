#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "canbus/bus.hpp"
#include "canbus/fault.hpp"
#include "core/node.hpp"
#include "sched/calendar.hpp"

/// \file scenario.hpp
/// Scenario — one simulated deployment: the kernel, one or more CAN
/// network segments (each with its own bus and reservation calendar), the
/// subject binding registry (global: subjects are system-wide names, as
/// in the paper's multi-network architecture [12]) and the set of nodes.
/// All examples, tests and benches build their worlds through this class.

namespace rtec {

class Scenario {
 public:
  struct Config {
    BusConfig bus{};
    /// Round length / ΔG_min used for every network's calendar; the
    /// BusConfig inside is overwritten with `bus` at construction.
    Calendar::Config calendar{};
    /// SRT deadline→priority map, identical on all nodes.
    DeadlinePriorityMap::Config srt_map{};
    /// Number of network segments (field buses). Nodes attach to exactly
    /// one; gateways attach to two via core/gateway.hpp.
    int networks = 1;
  };

  Scenario() : Scenario(Config{}) {}
  explicit Scenario(Config cfg);

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] int network_count() const { return static_cast<int>(networks_.size()); }
  [[nodiscard]] CanBus& bus(int network = 0) { return networks_.at(static_cast<std::size_t>(network))->bus; }
  [[nodiscard]] Calendar& calendar(int network = 0) { return networks_.at(static_cast<std::size_t>(network))->calendar; }
  [[nodiscard]] BindingRegistry& binding() { return binding_; }

  /// Installs a fault model on one network (owned by the scenario).
  void set_fault_model(std::unique_ptr<FaultModel> model, int network = 0);
  [[nodiscard]] FaultModel* fault_model(int network = 0) {
    return networks_.at(static_cast<std::size_t>(network))->faults.get();
  }

  /// Loads a configuration image (sched/calendar_io.hpp) into a network's
  /// calendar: every slot is re-admitted; bus/round/gap settings of the
  /// image must match the scenario's (nodes must agree on them).
  Expected<void, std::string> load_calendar_image(const std::string& text,
                                                  int network = 0);

  /// Adds a node to a network segment. Node ids are unique system-wide.
  Node& add_node(NodeId id, Node::ClockParams clock_params = {},
                 int network = 0);
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Network segment a node lives on.
  [[nodiscard]] int network_of(NodeId id) const { return network_of_.at(id); }

  /// Reserves a calendar slot for the sync round on `network` (etag
  /// kSyncRefEtag, publisher `master`, sized to carry reference +
  /// follow-up with one retry margin), makes `master` the sync master and
  /// every other node *on that network* a slave, and starts rounds at the
  /// slot's ready time. Call after adding that network's nodes.
  /// `rate_correction` toggles the slaves' drift-compensation servo
  /// (kept on in deployments; E11 ablates it for coasting behaviour).
  Expected<void, AdmissionError> enable_clock_sync(NodeId master,
                                                   Duration lst_offset,
                                                   bool rate_correction = true);

  /// Marks `gateway_node` (already added to `network`) as a forwarding
  /// gateway: frames it sends are treated as remote-origin by every node
  /// of that network (drives the LocalOnly subscriber filter). Applies to
  /// nodes present now and added later.
  void register_gateway(NodeId gateway_node, int network);

  /// Largest pairwise disagreement of all node clocks right now — the
  /// precision Π that ΔG_min must dominate.
  [[nodiscard]] Duration clock_precision() const;

  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }
  void run_until(TimePoint t) { sim_.run_until(t); }

 private:
  struct Network {
    Network(Simulator& sim, BusConfig bus_cfg, Calendar::Config cal_cfg)
        : bus{sim, bus_cfg}, calendar{cal_cfg} {}
    CanBus bus;
    Calendar calendar;
    std::unique_ptr<FaultModel> faults;
    std::vector<NodeId> gateways;
  };

  Config cfg_;
  Simulator sim_;
  std::vector<std::unique_ptr<Network>> networks_;
  BindingRegistry binding_;
  std::map<NodeId, std::unique_ptr<Node>> nodes_;
  std::map<NodeId, int> network_of_;
};

}  // namespace rtec
