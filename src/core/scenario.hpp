#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "canbus/attack.hpp"
#include "canbus/bus.hpp"
#include "canbus/fault.hpp"
#include "core/node.hpp"
#include "sched/calendar.hpp"
#include "sim/shard_engine.hpp"
#include "trace/binary.hpp"
#include "trace/detectors.hpp"
#include "trace/registry.hpp"
#include "trace/stream.hpp"
#include "util/profile.hpp"

/// \file scenario.hpp
/// Scenario — one simulated deployment: the kernel(s), one or more CAN
/// network segments (each with its own bus and reservation calendar), the
/// subject binding registry (global: subjects are system-wide names, as
/// in the paper's multi-network architecture [12]) and the set of nodes.
/// All examples, tests and benches build their worlds through this class.
///
/// Sharded execution (Config::shards > 1): the segments are partitioned
/// into contiguous groups, each driven by its own event kernel, and
/// run_for/run_until dispatch to the conservative parallel engine
/// (sim/shard_engine.hpp). Segments may then interact ONLY through
/// handoff channels (link_gateway) — direct cross-segment calls from
/// simulation callbacks would race and break determinism. Results are
/// bit-identical to the single-kernel run for any shard/thread count.

namespace rtec {

struct GatewayLink;

class Scenario {
 public:
  /// Middleware frames carry the segment in an 8-bit network id.
  static constexpr int kMaxNetworks = 256;

  struct Config {
    BusConfig bus{};
    /// Round length / ΔG_min used for every network's calendar; the
    /// BusConfig inside is overwritten with `bus` at construction.
    Calendar::Config calendar{};
    /// SRT deadline→priority map, identical on all nodes.
    DeadlinePriorityMap::Config srt_map{};
    /// Number of network segments (field buses). Nodes attach to exactly
    /// one; gateways attach to two via core/gateway.hpp.
    int networks = 1;
    /// Event-kernel shards the segments are partitioned into, clamped to
    /// [1, networks]. 1 = one shared kernel (the sequential reference);
    /// `networks` = one kernel per segment (maximum parallelism).
    int shards = 1;
    /// Worker threads driving shard epochs; 0 = one per shard. 1 runs the
    /// sharded scenario sequentially (identical results, no concurrency).
    unsigned threads = 0;
    /// Horizon policy for the conservative engine. kPerLink is the
    /// default; kGlobalMin reproduces the PR 3 coordinator for paired
    /// epoch-count benchmarking (traces are identical either way).
    LookaheadMode lookahead = LookaheadMode::kPerLink;
  };

  Scenario() : Scenario(Config{}) {}
  explicit Scenario(Config cfg);

  /// The shared event kernel. Only meaningful while the scenario is
  /// unsharded (asserted): with shards > 1 there is no single timeline —
  /// use segment_sim() for per-segment scheduling.
  [[nodiscard]] Simulator& sim() {
    assert(sims_.size() == 1);
    return *sims_.front();
  }
  /// The event kernel driving `network`'s shard.
  [[nodiscard]] Simulator& segment_sim(int network) {
    return *sims_[static_cast<std::size_t>(shard_of(network))];
  }
  /// Shard index a network segment is partitioned into.
  [[nodiscard]] int shard_of(int network) const {
    assert(network >= 0 && network < cfg_.networks);
    return network * static_cast<int>(sims_.size()) / cfg_.networks;
  }
  /// The conservative parallel engine (epoch/handoff statistics).
  [[nodiscard]] const ShardEngine& shard_engine() const { return engine_; }
  [[nodiscard]] int network_count() const { return static_cast<int>(networks_.size()); }
  [[nodiscard]] CanBus& bus(int network = 0) { return networks_.at(static_cast<std::size_t>(network))->bus; }
  [[nodiscard]] Calendar& calendar(int network = 0) { return networks_.at(static_cast<std::size_t>(network))->calendar; }
  [[nodiscard]] BindingRegistry& binding() { return binding_; }

  /// Installs a fault model on one network (owned by the scenario).
  void set_fault_model(std::unique_ptr<FaultModel> model, int network = 0);
  [[nodiscard]] FaultModel* fault_model(int network = 0) {
    return networks_.at(static_cast<std::size_t>(network))->faults.get();
  }

  /// Installs an adversarial workload (canbus/attack.hpp) on one network
  /// and arms it. `attacker_id` is the adversary's own controller identity
  /// on that segment and must be unused there (the attacker is an extra
  /// tap on the wire; forged identifiers are per-frame). Attacks sharing
  /// an attacker_id share one controller. All attack timing comes from the
  /// segment's kernel and `seed`, so sharded runs stay bit-identical.
  /// Returns the installed attack for counter inspection.
  AttackModel& install_attack(std::unique_ptr<AttackModel> attack,
                              NodeId attacker_id, std::uint64_t seed,
                              int network = 0);

  /// The network's streaming detector bank (trace/detectors.hpp), created
  /// on first use together with a StreamTap on the segment's bus. Add
  /// detectors to it before running; call flush_streams() when done.
  [[nodiscard]] trace::DetectorBank& detectors(int network = 0);
  /// Successful deliveries the network's tap has fed to its observers
  /// (0 when detectors() was never called for that network).
  [[nodiscard]] std::uint64_t tapped_deliveries(int network = 0) const;

  /// Ends the streaming observers' input: flushes window state of every
  /// detector bank at the current time and flushes file-backed RTEB
  /// recorders. Call once after the final run.
  void flush_streams();

  /// Attaches a memory-backed RTEB recorder (trace/binary.hpp) to one
  /// network: every bus occupancy of that segment, every alarm of
  /// detectors already in its bank, and every handoff posted on channels
  /// sourced from it (linked before or after this call) stream into one
  /// binary trace, byte-identical across shard/thread counts. Call after
  /// adding the network's detectors — alarm sinks are wired at this point
  /// (and replace any sink already set on them). One recorder per network.
  trace::RtebRecorder& record_rteb(int network = 0);
  /// Same, streaming to `path` through the writer's bounded buffer.
  trace::RtebRecorder& record_rteb_file(const std::string& path,
                                        int network = 0);
  /// The network's recorder, or nullptr when record_rteb was never called.
  [[nodiscard]] trace::RtebRecorder* rteb(int network = 0) {
    return networks_.at(static_cast<std::size_t>(network))->rteb.get();
  }

  /// Enables simulated-time span profiling (util/profile.hpp): wires the
  /// engine's epoch hook and every bus's occupancy hooks into one
  /// scenario-owned profiler. Idempotent; exported under "profile." by
  /// export_metrics.
  SpanProfiler& enable_profiling();

  /// Snapshots every counter the scenario can see into `reg` (metric
  /// catalog: docs/observability.md): per-shard kernel stats
  /// ("kernelNNN."), the parallel engine ("engine."), each network's bus
  /// / tap / detectors / RTEB writer ("netNNN."), and the profiler
  /// ("profile.") when enabled.
  void export_metrics(trace::MetricsRegistry& reg) const;
  /// export_metrics into a fresh registry, rendered as canonical JSON.
  [[nodiscard]] std::string metrics_json() const;

  /// Loads a configuration image (sched/calendar_io.hpp) into a network's
  /// calendar: every slot is re-admitted; bus/round/gap settings of the
  /// image must match the scenario's (nodes must agree on them).
  Expected<void, std::string> load_calendar_image(const std::string& text,
                                                  int network = 0);

  /// Adds a node to a network segment. Node ids are unique *per segment*
  /// (CAN arbitration only sees one segment), so city-scale topologies
  /// reuse the same small id space on every segment. The id-only lookup
  /// overloads below remain valid for any id used on a single segment.
  Node& add_node(NodeId id, Node::ClockParams clock_params = {},
                 int network = 0);
  /// Looks up a node by system-wide-unique id (asserts the id is used on
  /// exactly one segment — the common single/few-segment case).
  [[nodiscard]] Node& node(NodeId id);
  /// Looks up a node by its (segment, id) address.
  [[nodiscard]] Node& node(NodeId id, int network);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Network segment a node lives on (id-unique overload, asserted).
  [[nodiscard]] int network_of(NodeId id) const;
  /// Network segment a node instance lives on.
  [[nodiscard]] int network_of(const Node& n) const;

  /// Reserves a calendar slot for the sync round on `network` (etag
  /// kSyncRefEtag, publisher `master`, sized to carry reference +
  /// follow-up with one retry margin), makes `master` the sync master and
  /// every other node *on that network* a slave, and starts rounds at the
  /// slot's ready time. Call after adding that network's nodes.
  /// `rate_correction` toggles the slaves' drift-compensation servo
  /// (kept on in deployments; E11 ablates it for coasting behaviour).
  Expected<void, AdmissionError> enable_clock_sync(NodeId master,
                                                   Duration lst_offset,
                                                   bool rate_correction = true);
  /// Same, addressing the master by (segment, id) — required when the
  /// master's id is reused on other segments (city-scale topologies).
  Expected<void, AdmissionError> enable_clock_sync_on(
      int network, NodeId master, Duration lst_offset,
      bool rate_correction = true);

  /// Marks `gateway_node` (already added to `network`) as a forwarding
  /// gateway: frames it sends are treated as remote-origin by every node
  /// of that network (drives the LocalOnly subscriber filter). Applies to
  /// nodes present now and added later.
  void register_gateway(NodeId gateway_node, int network);

  /// Creates the pair of handoff channels a Gateway between nodes `a` and
  /// `b` forwards through, registers both nodes as gateways on their
  /// segments, and wires the channels into the shard engine.
  /// `forward_latency` (> 0) is the gateway's store-and-forward delay: a
  /// forwarded event is re-published on the far segment exactly that long
  /// after its delivery to the gateway stack. Across shards it doubles as
  /// the conservative lookahead, so larger latencies mean coarser (and
  /// cheaper) synchronization epochs.
  [[nodiscard]] GatewayLink link_gateway(const Node& a, const Node& b,
                                         Duration forward_latency);

  /// Largest pairwise disagreement of all node clocks right now — the
  /// precision Π that ΔG_min must dominate.
  [[nodiscard]] Duration clock_precision() const;
  /// Same, restricted to the nodes of one network segment (per-segment
  /// sync masters keep per-segment precisions; there is no system-wide Π
  /// guarantee across gateways).
  [[nodiscard]] Duration clock_precision(int network) const;

  void run_for(Duration d) { run_until(now() + d); }
  void run_until(TimePoint t);
  /// Current simulation time (all shards agree between run calls).
  [[nodiscard]] TimePoint now() const { return sims_.front()->now(); }

 private:
  struct Network {
    Network(Simulator& sim, BusConfig bus_cfg, Calendar::Config cal_cfg)
        : bus{sim, bus_cfg}, calendar{cal_cfg} {}
    CanBus bus;
    Calendar calendar;
    std::unique_ptr<FaultModel> faults;
    std::vector<NodeId> gateways;
    /// Adversary controllers keyed by node id (see install_attack).
    std::vector<std::unique_ptr<CanController>> attackers;
    std::vector<std::unique_ptr<AttackModel>> attacks;
    /// Streaming observer plumbing, created lazily by detectors().
    std::unique_ptr<trace::StreamTap> tap;
    std::unique_ptr<trace::DetectorBank> detector_bank;
    /// Binary trace capture, created by record_rteb[_file]().
    std::unique_ptr<trace::RtebRecorder> rteb;
  };

  trace::RtebRecorder& attach_rteb(int network, const std::string* path);

  Config cfg_;
  /// One kernel per shard; every member below may reference them, so they
  /// are declared first (destroyed last).
  std::vector<std::unique_ptr<Simulator>> sims_;
  ShardEngine engine_;
  std::vector<std::unique_ptr<Network>> networks_;
  BindingRegistry binding_;
  /// Nodes keyed by (segment, id): ids are unique per segment only.
  /// Iteration order (segment-major, id-minor) is what keeps per-segment
  /// setup deterministic and independent of other segments.
  std::map<std::pair<int, NodeId>, std::unique_ptr<Node>> nodes_;
  /// Segments each id appears on — backs the id-unique compat lookups.
  std::map<NodeId, std::vector<int>> id_networks_;
  /// (source network, channel) for every gateway channel, so RTEB
  /// recorders can hook handoff posts whichever of record_rteb /
  /// link_gateway runs first.
  std::vector<std::pair<int, HandoffChannel*>> channel_sources_;
  std::unique_ptr<SpanProfiler> profiler_;  ///< enable_profiling()
};

}  // namespace rtec
