#pragma once

#include "canbus/controller.hpp"
#include "sched/calendar.hpp"
#include "sim/simulator.hpp"
#include "time/clock.hpp"

/// \file node_context.hpp
/// Per-node infrastructure handed to the middleware engines: the simulation
/// kernel, this node's communication controller, its synchronized local
/// clock, and the (offline-distributed) reservation calendar.

namespace rtec {

struct NodeContext {
  Simulator& sim;
  CanController& controller;
  LocalClock& clock;
  /// Reservation calendar, identical on every node (distributed during the
  /// configuration phase). May be null on nodes that use no HRT channels.
  const Calendar* calendar = nullptr;
  NodeId node = 0;
};

}  // namespace rtec
