#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/attributes.hpp"
#include "core/errors.hpp"
#include "core/event.hpp"
#include "core/node_context.hpp"
#include "core/subscription.hpp"
#include "sched/id_codec.hpp"
#include "util/expected.hpp"
#include "util/stats.hpp"

/// \file hrt_engine.hpp
/// Hard real-time event channel machinery (paper §2.2.1, §3.1–§3.2).
///
/// Publisher side, per reserved slot instance (Fig. 3):
///   ready  = LST − ΔT_wait : the published event is placed in the
///            controller with the exclusive priority 0. From here at most
///            one non-preemptable lower-priority frame can delay it, by at
///            most ΔT_wait, so transmission starts no later than LST.
///   On a corrupted attempt the engine immediately resubmits (time
///   redundancy), up to omission_degree + 1 attempts. On the first
///   successful attempt it STOPS — the rest of the reserved window is
///   implicitly handed to SRT/NRT traffic by CAN arbitration (the
///   bandwidth-reclamation property, E4).
///   deadline = LST + WCTT : if no attempt succeeded by now the fault
///   assumption was violated → kTransmissionFailed.
///
/// Subscriber side: the slot table tells the subscriber exactly when a
/// message may arrive (the "known time of transmission ... exploited as a
/// filter"). A frame arriving in the window is buffered and released to
/// the application exactly at the delivery deadline — jitter is removed in
/// the middleware, not on the network (§3.2). An empty window of a
/// periodic slot raises kMissingMessage.

namespace rtec {

class HrtEngine {
 public:
  struct Counters {
    std::uint64_t published = 0;
    std::uint64_t sent_ok = 0;          ///< instances delivered on the bus
    std::uint64_t retries = 0;          ///< redundant attempts actually used
    std::uint64_t send_failed = 0;      ///< fault assumption violated
    std::uint64_t publish_missed = 0;   ///< periodic slot with no event
    std::uint64_t overwritten = 0;      ///< unsent event replaced
    std::uint64_t delivered = 0;        ///< events released to subscribers
    std::uint64_t missing = 0;          ///< empty periodic windows (rx side)
    std::uint64_t stray_frames = 0;     ///< HRT frames outside any window
  };

  /// Subscriber handle; owned by the engine, stable address.
  struct Subscription : SubscriptionBase {
    using SubscriptionBase::SubscriptionBase;

    struct SlotWatch {
      std::size_t slot_index = 0;
      Calendar::Instance current;
      bool window_open = false;
      std::optional<Event> arrival;
      Simulator::TimerHandle timer;
    };
    std::vector<SlotWatch> watches;
    bool cancelled = false;
  };

  explicit HrtEngine(const NodeContext& ctx);

  /// Publisher registration: binds to the calendar slots reserved for
  /// (etag, this node). Fails with kNoReservation when the offline
  /// calendar contains none (reservations are made offline, §3.1).
  Expected<void, ChannelError> announce(Subject subject, Etag etag,
                                        const AttributeList& attrs,
                                        ExceptionHandler on_exception);

  Expected<void, ChannelError> cancel_publication(Etag etag);

  /// Stages `event` for the next reserved slot instance. Publishing twice
  /// before the slot fires overwrites (latest-value semantics for sensor
  /// streams) and raises kEventOverwritten.
  Expected<void, ChannelError> publish(Etag etag, Event event);

  Expected<Subscription*, ChannelError> subscribe(Subject subject, Etag etag,
                                                  const AttributeList& attrs,
                                                  NotificationHandler notify,
                                                  ExceptionHandler on_exception);

  void cancel_subscription(Subscription* sub);

  /// RX dispatch from the middleware (frames with priority 0).
  void on_frame(const CanIdFields& fields, const CanFrame& frame,
                TimePoint bus_time);

  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct Publication {
    Subject subject;
    Etag etag = 0;
    bool periodic = true;
    int dlc = 8;
    int omission_degree = 0;
    /// Paper's scheme: stop transmitting once all nodes have the frame.
    /// false = TTCAN-style ablation (attr::AlwaysTransmitCopies).
    bool suppress_on_success = true;
    ExceptionHandler on_exception;
    std::vector<std::size_t> slots;  ///< calendar indices owned here

    std::optional<Event> next_event;
    // Active instance state (at most one instance of one slot is active at
    // a time per publication: admission guarantees window disjointness).
    bool instance_active = false;
    bool instance_sent = false;
    int attempts = 0;
    Calendar::Instance current;
    std::vector<Simulator::TimerHandle> ready_timers;  // one per slot
    Simulator::TimerHandle deadline_timer;
  };

  void arm_slot(Publication& pub, std::size_t slot_pos, TimePoint local_after);
  void on_slot_ready(Publication& pub, std::size_t slot_pos,
                     Calendar::Instance inst);
  void submit_attempt(Publication& pub, const Event& event);
  void on_tx_result(Etag etag, bool success);
  void raise(const Publication& pub, ChannelError e);

  void arm_watch(Subscription& sub, Subscription::SlotWatch& watch,
                 TimePoint local_after);
  void open_watch(Subscription& sub, Subscription::SlotWatch& watch);
  void close_watch(Subscription& sub, Subscription::SlotWatch& watch);

  NodeContext ctx_;
  std::map<Etag, Publication> publications_;
  // In-flight event bytes per publication (kept out of Publication so the
  // tx-result callback can validate the etag still exists).
  std::map<Etag, Event> in_flight_events_;
  std::vector<std::unique_ptr<Subscription>> subscriptions_;
  Counters counters_;
};

}  // namespace rtec
