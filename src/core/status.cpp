#include "core/status.hpp"

#include <cstdio>

namespace rtec {

namespace {
void line(std::string& out, const char* fmt, auto... args) {
  char buf[200];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
  out += '\n';
}
}  // namespace

std::string middleware_status(const Middleware& mw) {
  std::string out;
  line(out, "node %u middleware:", static_cast<unsigned>(mw.node()));
  const auto& h = mw.hrt().counters();
  line(out,
       "  hrt: published %llu sent_ok %llu retries %llu failed %llu "
       "publish_missed %llu | delivered %llu missing %llu stray %llu",
       static_cast<unsigned long long>(h.published),
       static_cast<unsigned long long>(h.sent_ok),
       static_cast<unsigned long long>(h.retries),
       static_cast<unsigned long long>(h.send_failed),
       static_cast<unsigned long long>(h.publish_missed),
       static_cast<unsigned long long>(h.delivered),
       static_cast<unsigned long long>(h.missing),
       static_cast<unsigned long long>(h.stray_frames));
  const auto& s = mw.srt().counters();
  line(out,
       "  srt: published %llu sent %llu (by deadline %llu) missed %llu "
       "expired %llu | promos %llu (blocked %llu) preempt %llu | queue %zu",
       static_cast<unsigned long long>(s.published),
       static_cast<unsigned long long>(s.sent),
       static_cast<unsigned long long>(s.sent_by_deadline),
       static_cast<unsigned long long>(s.deadline_missed),
       static_cast<unsigned long long>(s.expired),
       static_cast<unsigned long long>(s.promotions),
       static_cast<unsigned long long>(s.promotion_blocked),
       static_cast<unsigned long long>(s.preemptions),
       mw.srt().queue_length());
  const auto& n = mw.nrt().counters();
  line(out,
       "  nrt: published %llu frames %llu messages %llu failed %llu | "
       "delivered %llu reasm_failed %llu | backlog %zu",
       static_cast<unsigned long long>(n.published),
       static_cast<unsigned long long>(n.frames_sent),
       static_cast<unsigned long long>(n.messages_sent),
       static_cast<unsigned long long>(n.send_failed),
       static_cast<unsigned long long>(n.delivered),
       static_cast<unsigned long long>(n.reassembly_failed),
       mw.nrt().backlog_frames());
  line(out, "  rx frames seen: %llu",
       static_cast<unsigned long long>(mw.rx_frames_seen()));
  return out;
}

std::string node_status(const Node& node) {
  std::string out;
  const CanController& ctl = node.controller();
  char head[120];
  std::snprintf(head, sizeof head,
                "node %u: local clock %.3f ms, TEC %d REC %d%s%s\n",
                static_cast<unsigned>(node.id()), node.clock().now().ms(),
                ctl.tec(), ctl.rec(), ctl.bus_off() ? " BUS-OFF" : "",
                ctl.error_passive() ? " error-passive" : "");
  out += head;
  out += middleware_status(node.middleware());
  return out;
}

}  // namespace rtec
