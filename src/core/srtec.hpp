#pragma once

#include <optional>

#include "core/middleware.hpp"

/// \file srtec.hpp
/// Soft real-time event channel — the application-facing class of Fig. 2.
/// Structurally similar to HRTEC but without reservations: events carry a
/// transmission deadline and an expiration (validity interval) in their
/// attributes (or inherit channel defaults from attr::Deadline /
/// attr::Expiration), are scheduled EDF on the bus, and the exception
/// handler reports kDeadlineMissed / kExpired for awareness (§2.2.2).

namespace rtec {

class Srtec {
 public:
  explicit Srtec(Middleware& mw) : mw_{mw} {}
  Srtec(const Srtec&) = delete;
  Srtec& operator=(const Srtec&) = delete;
  ~Srtec();

  Expected<void, ChannelError> announce(Subject subject,
                                        const AttributeList& attrs,
                                        ExceptionHandler exception_handler);

  /// Fig. 2 lists cancelPublication() explicitly for SRTECs (no network
  /// resources are reserved, so this is purely local bookkeeping).
  Expected<void, ChannelError> cancelPublication();

  /// Queues the event for EDF transmission. `event.attributes.deadline`
  /// and `.expiration` may be absolute local times; TimePoint::max()
  /// applies the channel defaults.
  Expected<void, ChannelError> publish(Event event);

  Expected<void, ChannelError> subscribe(Subject subject,
                                         const AttributeList& attrs,
                                         NotificationHandler not_handler,
                                         ExceptionHandler exception_handler);
  Expected<void, ChannelError> cancelSubscription();

  [[nodiscard]] std::optional<Event> getEvent();
  [[nodiscard]] std::optional<Subject> subject() const { return subject_; }

 private:
  Middleware& mw_;
  std::optional<Subject> subject_;
  std::optional<Etag> announced_;
  SrtEngine::Subscription* sub_ = nullptr;
};

}  // namespace rtec
