#include "core/node.hpp"

namespace rtec {

namespace {
CanController::Config node_controller_config(const BusConfig& bus) {
  CanController::Config cfg;
  // Standard bus-off recovery: 128 sequences of 11 recessive bits.
  cfg.auto_recovery_delay = bus.bit_time() * (128 * 11);
  return cfg;
}
}  // namespace

Node::Node(Simulator& sim, CanBus& bus, BindingRegistry& binding,
           const Calendar* calendar, NodeId id, ClockParams clock_params,
           Middleware::Config mw_cfg)
    : controller_{sim, id, node_controller_config(bus.config())},
      clock_{sim, clock_params.initial_offset, clock_params.drift_ppb,
             clock_params.granularity},
      middleware_{NodeContext{sim, controller_, clock_, calendar, id}, binding,
                  mw_cfg} {
  bus.attach(controller_);
}

SyncMaster& Node::make_sync_master(const SyncConfig& cfg) {
  sync_master_ = std::make_unique<SyncMaster>(middleware_.context().sim,
                                              controller_, clock_, cfg);
  return *sync_master_;
}

SyncSlave& Node::make_sync_slave(const SyncConfig& cfg) {
  sync_slave_ = std::make_unique<SyncSlave>(middleware_.context().sim,
                                            controller_, clock_, cfg);
  return *sync_slave_;
}

}  // namespace rtec
