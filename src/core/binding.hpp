#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/errors.hpp"
#include "core/subject.hpp"
#include "sched/id_codec.hpp"
#include "util/expected.hpp"

/// \file binding.hpp
/// Subject→etag binding (the *dynamic binding* optimization of §2.1).
/// Binding relates the 64-bit subject of an event channel to the 14-bit
/// etag field of the CAN identifier, so the communication controller's
/// acceptance filters do the subject filtering in hardware and "the
/// subject filtering does not put any burden to the embedded computational
/// component".
///
/// The paper delegates binding to the configuration protocol of [13],
/// executed during the configuration phase. This registry models that
/// phase's outcome: a consistent, system-wide subject→etag map that every
/// node queries at announce/subscribe time. Low etags are reserved for
/// infrastructure channels (clock sync).

namespace rtec {

class BindingRegistry {
 public:
  /// Returns the etag bound to `subject`, creating a fresh binding when the
  /// subject is seen for the first time. Fails when the 14-bit etag space
  /// is exhausted.
  Expected<Etag, ChannelError> bind(Subject subject);

  /// Existing binding, if any (no side effects).
  [[nodiscard]] std::optional<Etag> lookup(Subject subject) const;

  /// Reverse lookup for diagnostics.
  [[nodiscard]] std::optional<Subject> subject_of(Etag etag) const;

  [[nodiscard]] std::size_t size() const { return by_subject_.size(); }

 private:
  std::map<Subject, Etag> by_subject_;
  std::map<Etag, Subject> by_etag_;
  Etag next_ = kFirstApplicationEtag;
};

}  // namespace rtec
