#include "core/binding_protocol.hpp"

#include "util/bytes.hpp"

namespace rtec {

BindingAgent::BindingAgent(const NodeContext& ctx, BindingRegistry& registry)
    : ctx_{ctx}, registry_{registry} {
  ctx_.controller.add_rx_listener(
      [this](const CanFrame& frame, TimePoint now) { on_frame(frame, now); });
}

void BindingAgent::on_frame(const CanFrame& frame, TimePoint) {
  if (!frame.extended) return;
  const CanIdFields fields = decode_can_id(frame.id);
  if (fields.etag != kBindingRequestEtag || frame.dlc != 8) return;

  const Subject subject{load_le64({frame.data.data(), 8})};
  const auto bound = registry_.bind(subject);
  ++served_;

  CanFrame reply;
  reply.id = encode_can_id({kBindingPriority, ctx_.node, kBindingReplyEtag});
  reply.dlc = 8;
  reply.data[0] = fields.tx_node;
  store_le16({reply.data.data() + 1, 2}, bound ? *bound : 0);
  reply.data[3] = bound ? 0 : 1;
  store_le32({reply.data.data() + 4, 4},
             static_cast<std::uint32_t>(subject.uid & 0xffffffff));
  (void)ctx_.controller.submit(reply, TxMode::kAutoRetransmit);
}

BindingClient::BindingClient(const NodeContext& ctx, Config cfg)
    : ctx_{ctx}, cfg_{cfg} {
  ctx_.controller.add_rx_listener(
      [this](const CanFrame& frame, TimePoint now) { on_frame(frame, now); });
}

void BindingClient::resolve(Subject subject, Callback cb) {
  if (const auto it = cache_.find(subject); it != cache_.end()) {
    cb(it->second);
    return;
  }
  queue_.push_back(PendingRequest{subject, std::move(cb), 0});
  pump();
}

std::optional<Etag> BindingClient::cached(Subject subject) const {
  const auto it = cache_.find(subject);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

void BindingClient::pump() {
  if (active_ || queue_.empty()) return;
  active_ = std::move(queue_.front());
  queue_.pop_front();
  // The cache may have been filled by an overheard reply meanwhile.
  if (const auto it = cache_.find(active_->subject); it != cache_.end()) {
    finish(it->second);
    return;
  }
  send_request();
}

void BindingClient::send_request() {
  CanFrame req;
  req.id = encode_can_id({kBindingPriority, ctx_.node, kBindingRequestEtag});
  req.dlc = 8;
  store_le64({req.data.data(), 8}, active_->subject.uid);
  ++active_->attempts;
  ++sent_;
  (void)ctx_.controller.submit(req, TxMode::kAutoRetransmit);
  timeout_timer_ =
      ctx_.sim.schedule_after(cfg_.timeout, [this] { on_timeout(); });
}

void BindingClient::on_timeout() {
  if (!active_) return;
  ++timeouts_;
  if (active_->attempts >= cfg_.max_attempts) {
    finish(Unexpected{ChannelError::kBindingFailed});
    return;
  }
  send_request();
}

void BindingClient::finish(Expected<Etag, ChannelError> result) {
  ctx_.sim.cancel(timeout_timer_);
  Callback cb = std::move(active_->cb);
  active_.reset();
  cb(result);
  pump();
}

void BindingClient::on_frame(const CanFrame& frame, TimePoint) {
  if (!frame.extended) return;
  const CanIdFields fields = decode_can_id(frame.id);
  if (fields.etag != kBindingReplyEtag || frame.dlc != 8) return;

  const Etag etag = load_le16({frame.data.data() + 1, 2});
  const bool ok = frame.data[3] == 0;
  const std::uint32_t uid_low = load_le32({frame.data.data() + 4, 4});

  // Every client overhears every reply and warms its cache — replies are
  // broadcast, so commissioning traffic shrinks as the system boots. The
  // subject is only known in full to the requester; others can only cache
  // once they see the subject themselves, so match against the active
  // request here.
  if (active_ &&
      static_cast<std::uint32_t>(active_->subject.uid & 0xffffffff) == uid_low &&
      frame.data[0] == ctx_.node) {
    if (ok) {
      cache_.emplace(active_->subject, etag);
      finish(etag);
    } else {
      finish(Unexpected{ChannelError::kBindingFailed});
    }
  }
}

}  // namespace rtec
