#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/subject.hpp"
#include "util/time_types.hpp"

/// \file event.hpp
/// Events: event := <subject, attribute_list, content> (paper §2).
/// The content is "a structured set of functional parameters" — here raw
/// bytes plus typed accessors; HRT/SRT events fit one CAN frame (<= 8
/// bytes), NRT events may be arbitrarily large and are fragmented by the
/// middleware.

namespace rtec {

/// Per-occurrence (non-functional) attributes of one event instance.
/// Timestamps are on the publishing node's synchronized local timeline.
struct EventAttributes {
  /// Latest point in time the event message must be transmitted (SRT).
  /// TimePoint::max() = use the channel's default deadline.
  TimePoint deadline = TimePoint::max();
  /// End of temporal validity; after this the event may be dropped
  /// entirely (SRT). TimePoint::max() = channel default.
  TimePoint expiration = TimePoint::max();
  /// Application mode/context tag (free-form, e.g. operating mode).
  std::uint8_t mode = 0;
  /// Set by the middleware at publish time.
  TimePoint timestamp;
  /// Network segment of origin; set by the middleware / gateway, used by
  /// the LocalOnly subscriber filter.
  std::uint8_t origin_network = 0;
};

struct Event {
  Subject subject;
  EventAttributes attributes;
  std::vector<std::uint8_t> content;

  Event() = default;
  Event(Subject s, std::vector<std::uint8_t> bytes)
      : subject{s}, content{std::move(bytes)} {}

  [[nodiscard]] std::span<const std::uint8_t> payload() const { return content; }
  [[nodiscard]] std::size_t size() const { return content.size(); }
};

}  // namespace rtec
