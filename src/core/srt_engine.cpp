#include "core/srt_engine.hpp"

#include <algorithm>
#include <cassert>

#include "util/logging.hpp"

namespace rtec {

SrtEngine::SrtEngine(const NodeContext& ctx, DeadlinePriorityMap::Config map_cfg,
                     std::uint8_t network_id)
    : ctx_{ctx}, map_{map_cfg}, network_id_{network_id} {
  // The middleware rigorously enforces P_HRT < P_SRT < P_NRT (§3.3).
  assert(map_cfg.p_min >= kSrtPriorityMin && map_cfg.p_max <= kSrtPriorityMax);
}

Expected<void, ChannelError> SrtEngine::announce(Subject subject, Etag etag,
                                                 const AttributeList& attrs,
                                                 ExceptionHandler on_exception) {
  if (publications_.contains(etag))
    return Unexpected{ChannelError::kAlreadyAnnounced};
  Publication pub;
  pub.subject = subject;
  pub.etag = etag;
  pub.on_exception = std::move(on_exception);
  if (const auto d = attrs.get<attr::Deadline>()) {
    if (d->relative <= Duration::zero())
      return Unexpected{ChannelError::kInvalidAttribute};
    pub.default_deadline = d->relative;
  }
  if (const auto x = attrs.get<attr::Expiration>()) {
    if (x->relative < pub.default_deadline)
      return Unexpected{ChannelError::kInvalidAttribute};
    pub.default_expiration = x->relative;
  } else {
    pub.default_expiration = pub.default_deadline * 2;
  }
  publications_.emplace(etag, std::move(pub));
  return {};
}

Expected<void, ChannelError> SrtEngine::cancel_publication(Etag etag) {
  const auto it = publications_.find(etag);
  if (it == publications_.end())
    return Unexpected{ChannelError::kNotAnnounced};
  publications_.erase(it);
  // Already-queued messages of this channel drain normally (they were
  // accepted while the publication existed).
  return {};
}

Expected<void, ChannelError> SrtEngine::publish(Etag etag, Event event) {
  const auto it = publications_.find(etag);
  if (it == publications_.end())
    return Unexpected{ChannelError::kNotAnnounced};
  const Publication& pub = it->second;
  if (event.size() > 8) return Unexpected{ChannelError::kPayloadTooLarge};

  const TimePoint now_local = ctx_.clock.now();
  Message msg;
  msg.uid = next_uid_++;
  msg.etag = etag;
  msg.enqueued = now_local;
  msg.deadline = event.attributes.deadline != TimePoint::max()
                     ? event.attributes.deadline
                     : now_local + pub.default_deadline;
  msg.expiration = event.attributes.expiration != TimePoint::max()
                       ? event.attributes.expiration
                       : now_local + pub.default_expiration;
  if (msg.expiration < msg.deadline)
    return Unexpected{ChannelError::kInvalidAttribute};

  msg.frame.id = encode_can_id(
      {map_.priority_for(now_local, msg.deadline), ctx_.node, etag});
  msg.frame.extended = true;
  msg.frame.dlc = static_cast<std::uint8_t>(event.size());
  std::copy(event.content.begin(), event.content.end(), msg.frame.data.begin());

  ++counters_.published;
  const std::uint64_t uid = msg.uid;
  const TimePoint deadline = msg.deadline;
  const TimePoint expiration = msg.expiration;

  queued_handles_[uid] = queue_.push(msg.deadline, std::move(msg));

  MsgTimers t;
  t.etag = etag;
  t.deadline = ctx_.clock.schedule_at_local(deadline,
                                            [this, uid] { on_deadline(uid); });
  t.expiration = ctx_.clock.schedule_at_local(
      expiration, [this, uid] { on_expiration(uid); });
  timers_.emplace(uid, std::move(t));

  pump();
  return {};
}

void SrtEngine::pump() {
  // Preemption: if a queued message now has an earlier deadline than the
  // one staged in the mailbox, swap them (possible only while the staged
  // frame is not on the wire — transmission is non-preemptable).
  if (in_flight_ && !queue_.empty() &&
      queue_.earliest_deadline() < in_flight_->msg.deadline) {
    if (ctx_.controller.abort(in_flight_->mailbox)) {
      ++counters_.preemptions;
      ctx_.sim.cancel(promotion_timer_);
      Message back = std::move(in_flight_->msg);
      in_flight_.reset();
      queued_handles_[back.uid] = queue_.push(back.deadline, std::move(back));
    }
  }

  if (in_flight_ || queue_.empty()) return;

  std::optional<Message> next = queue_.pop();
  assert(next);
  queued_handles_.erase(next->uid);
  start_transmission(std::move(*next));
}

void SrtEngine::start_transmission(Message msg) {
  const TimePoint now_local = ctx_.clock.now();
  const Priority prio = map_.priority_for(now_local, msg.deadline);
  msg.frame.id = encode_can_id({prio, ctx_.node, msg.etag});

  const std::uint64_t uid = msg.uid;
  const auto result = ctx_.controller.submit(
      msg.frame, TxMode::kAutoRetransmit,
      [this, uid](CanController::MailboxId, const CanFrame&, bool success,
                  TimePoint) { on_tx_result(uid, success); });
  if (!result) {
    // Controller unavailable (bus-off / mailboxes exhausted): report and
    // drop; the application reacts via its exception handler.
    raise(msg.etag, ChannelError::kBusOff);
    timers_.erase(uid);
    pump();
    return;
  }
  in_flight_ = InFlight{std::move(msg), *result, prio};
  arm_promotion();
}

void SrtEngine::arm_promotion() {
  assert(in_flight_);
  ctx_.sim.cancel(promotion_timer_);
  const TimePoint due =
      map_.next_promotion(ctx_.clock.now(), in_flight_->msg.deadline);
  if (due == TimePoint::max()) return;  // already at the most urgent band
  promotion_timer_ =
      ctx_.clock.schedule_at_local(due, [this] { on_promotion_due(); });
}

void SrtEngine::on_promotion_due() {
  if (!in_flight_) return;
  const TimePoint now_local = ctx_.clock.now();
  const Priority target = map_.priority_for(now_local, in_flight_->msg.deadline);
  if (target < in_flight_->current_priority) {
    const std::uint32_t new_id =
        encode_can_id({target, ctx_.node, in_flight_->msg.etag});
    if (ctx_.controller.rewrite_id(in_flight_->mailbox, new_id)) {
      in_flight_->current_priority = target;
      in_flight_->msg.frame.id = new_id;
      ++counters_.promotions;
      Logger::instance().logf(LogLevel::kDebug, now_local, "srt",
                              "etag %u promoted to band %u",
                              in_flight_->msg.etag, target);
    } else {
      // Frame currently on the wire; if the transmission fails the retry
      // happens at the old band until the next boundary.
      ++counters_.promotion_blocked;
    }
  }
  arm_promotion();
}

void SrtEngine::on_tx_result(std::uint64_t uid, bool success) {
  if (!in_flight_ || in_flight_->msg.uid != uid) {
    // Result for a message that was aborted (expired) between the wire and
    // this callback; nothing to do.
    pump();
    return;
  }
  const Message msg = std::move(in_flight_->msg);
  in_flight_.reset();
  ctx_.sim.cancel(promotion_timer_);

  const TimePoint now_local = ctx_.clock.now();
  if (success) {
    ++counters_.sent;
    if (now_local <= msg.deadline) ++counters_.sent_by_deadline;
  } else {
    raise(msg.etag, ChannelError::kBusOff);
  }
  const auto t = timers_.find(uid);
  if (t != timers_.end()) {
    ctx_.sim.cancel(t->second.deadline);
    ctx_.sim.cancel(t->second.expiration);
    timers_.erase(t);
  }
  pump();
}

void SrtEngine::on_deadline(std::uint64_t uid) {
  // Still queued or in flight at the deadline → awareness notification;
  // the message keeps competing until its expiration (§2.2.2).
  const bool queued = queued_handles_.contains(uid);
  const bool flying = in_flight_ && in_flight_->msg.uid == uid;
  if (!queued && !flying) return;
  auto t = timers_.find(uid);
  if (t == timers_.end() || t->second.deadline_reported) return;
  t->second.deadline_reported = true;
  ++counters_.deadline_missed;
  Logger::instance().logf(LogLevel::kInfo, ctx_.clock.now(), "srt",
                          "etag %u missed its transmission deadline",
                          t->second.etag);
  raise(t->second.etag, ChannelError::kDeadlineMissed);
}

void SrtEngine::on_expiration(std::uint64_t uid) {
  // Validity gone: remove from the local send queue entirely (§2.2.2).
  if (const auto h = queued_handles_.find(uid); h != queued_handles_.end()) {
    if (auto msg = queue_.remove(h->second)) {
      queued_handles_.erase(uid);
      timers_.erase(uid);
      ++counters_.expired;
      raise(msg->etag, ChannelError::kExpired);
      return;
    }
  }
  if (in_flight_ && in_flight_->msg.uid == uid) {
    // Try to pull it out of the mailbox; if it is on the wire it will
    // complete anyway (non-preemptable).
    if (ctx_.controller.abort(in_flight_->mailbox)) {
      const Etag etag = in_flight_->msg.etag;
      in_flight_.reset();
      ctx_.sim.cancel(promotion_timer_);
      timers_.erase(uid);
      ++counters_.expired;
      raise(etag, ChannelError::kExpired);
      pump();
    }
  }
}

void SrtEngine::raise(Etag etag, ChannelError e) {
  const auto it = publications_.find(etag);
  if (it != publications_.end() && it->second.on_exception)
    it->second.on_exception({e, it->second.subject, ctx_.clock.now()});
}

Expected<SrtEngine::Subscription*, ChannelError> SrtEngine::subscribe(
    Subject subject, Etag etag, const AttributeList& attrs,
    NotificationHandler notify, ExceptionHandler on_exception) {
  const std::size_t capacity =
      attrs.get<attr::QueueCapacity>().value_or(attr::QueueCapacity{}).events;
  auto sub = std::make_unique<Subscription>(subject, etag, capacity);
  sub->local_only = attrs.has<attr::LocalOnly>();
  sub->notify = std::move(notify);
  sub->on_exception = std::move(on_exception);
  subscriptions_.push_back(std::move(sub));
  return subscriptions_.back().get();
}

void SrtEngine::cancel_subscription(Subscription* sub) {
  if (sub != nullptr) sub->cancelled = true;
}

void SrtEngine::on_frame(const CanIdFields& fields, const CanFrame& frame,
                         TimePoint, bool remote_origin) {
  for (const auto& sub : subscriptions_) {
    if (sub->cancelled || sub->etag != fields.etag) continue;
    if (sub->local_only && remote_origin) continue;
    Event event;
    event.subject = sub->subject;
    event.content.assign(frame.data.begin(), frame.data.begin() + frame.dlc);
    event.attributes.timestamp = ctx_.clock.now();
    // Remote events are tagged with the sentinel 0xff: the frame itself
    // carries no origin field; "remote" is inferred from the forwarding
    // gateway's TxNode (configured system-wide).
    event.attributes.origin_network = remote_origin ? 0xff : network_id_;
    ++counters_.delivered;
    sub->deliver(std::move(event), ctx_.clock.now());
  }
}

}  // namespace rtec
