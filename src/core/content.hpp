#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "core/event.hpp"
#include "util/bytes.hpp"

/// \file content.hpp
/// Typed access to event content — §2: "The content of an event carries
/// the data and is represented as a structured set of functional
/// parameters. The fields of the content are accessible by specific
/// methods."
///
/// ContentWriter appends little-endian fields into an event's payload;
/// ContentReader extracts them positionally. Both are bounds-checked:
/// reads past the payload return nullopt instead of garbage, so a
/// malformed (or differently-versioned) publisher cannot crash a
/// subscriber. RT channels hold at most 8 bytes, NRT bulk events any
/// size.

namespace rtec {

class ContentWriter {
 public:
  explicit ContentWriter(Event& event) : event_{event} {}

  ContentWriter& u8(std::uint8_t v) {
    event_.content.push_back(v);
    return *this;
  }
  ContentWriter& u16(std::uint16_t v) {
    grow(2);
    store_le16({event_.content.data() + event_.content.size() - 2, 2}, v);
    return *this;
  }
  ContentWriter& u32(std::uint32_t v) {
    grow(4);
    store_le32({event_.content.data() + event_.content.size() - 4, 4}, v);
    return *this;
  }
  ContentWriter& u64(std::uint64_t v) {
    grow(8);
    store_le64({event_.content.data() + event_.content.size() - 8, 8}, v);
    return *this;
  }
  ContentWriter& i8(std::int8_t v) { return u8(static_cast<std::uint8_t>(v)); }
  ContentWriter& i16(std::int16_t v) { return u16(static_cast<std::uint16_t>(v)); }
  ContentWriter& i32(std::int32_t v) { return u32(static_cast<std::uint32_t>(v)); }
  ContentWriter& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 single, little-endian.
  ContentWriter& f32(float v) {
    std::uint32_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    return u32(bits);
  }
  ContentWriter& bytes(std::string_view raw) {
    event_.content.insert(event_.content.end(), raw.begin(), raw.end());
    return *this;
  }

 private:
  void grow(std::size_t n) { event_.content.resize(event_.content.size() + n); }
  Event& event_;
};

class ContentReader {
 public:
  explicit ContentReader(const Event& event) : event_{event} {}

  [[nodiscard]] std::optional<std::uint8_t> u8() {
    if (!fits(1)) return std::nullopt;
    return event_.content[pos_++];
  }
  [[nodiscard]] std::optional<std::uint16_t> u16() {
    if (!fits(2)) return std::nullopt;
    const auto v = load_le16({event_.content.data() + pos_, 2});
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::optional<std::uint32_t> u32() {
    if (!fits(4)) return std::nullopt;
    const auto v = load_le32({event_.content.data() + pos_, 4});
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::optional<std::uint64_t> u64() {
    if (!fits(8)) return std::nullopt;
    const auto v = load_le64({event_.content.data() + pos_, 8});
    pos_ += 8;
    return v;
  }
  [[nodiscard]] std::optional<std::int8_t> i8() {
    const auto v = u8();
    if (!v) return std::nullopt;
    return static_cast<std::int8_t>(*v);
  }
  [[nodiscard]] std::optional<std::int16_t> i16() {
    const auto v = u16();
    if (!v) return std::nullopt;
    return static_cast<std::int16_t>(*v);
  }
  [[nodiscard]] std::optional<std::int32_t> i32() {
    const auto v = u32();
    if (!v) return std::nullopt;
    return static_cast<std::int32_t>(*v);
  }
  [[nodiscard]] std::optional<std::int64_t> i64() {
    const auto v = u64();
    if (!v) return std::nullopt;
    return static_cast<std::int64_t>(*v);
  }
  [[nodiscard]] std::optional<float> f32() {
    const auto bits = u32();
    if (!bits) return std::nullopt;
    float v;
    __builtin_memcpy(&v, &*bits, sizeof v);
    return v;
  }

  [[nodiscard]] std::size_t remaining() const {
    return event_.content.size() - pos_;
  }
  /// True when every read so far succeeded and nothing is left over —
  /// subscribers use this to validate a payload's exact shape.
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  [[nodiscard]] bool fits(std::size_t n) const {
    return pos_ + n <= event_.content.size();
  }
  const Event& event_;
  std::size_t pos_ = 0;
};

}  // namespace rtec
