#include "core/errors.hpp"

namespace rtec {

std::string_view to_string(ChannelError e) {
  switch (e) {
    case ChannelError::kNotAnnounced: return "not_announced";
    case ChannelError::kAlreadyAnnounced: return "already_announced";
    case ChannelError::kNotSubscribed: return "not_subscribed";
    case ChannelError::kAlreadySubscribed: return "already_subscribed";
    case ChannelError::kNoReservation: return "no_reservation";
    case ChannelError::kInvalidAttribute: return "invalid_attribute";
    case ChannelError::kPayloadTooLarge: return "payload_too_large";
    case ChannelError::kPriorityOutOfRange: return "priority_out_of_range";
    case ChannelError::kBindingFailed: return "binding_failed";
    case ChannelError::kBusOff: return "bus_off";
    case ChannelError::kDeadlineMissed: return "deadline_missed";
    case ChannelError::kExpired: return "expired";
    case ChannelError::kMissingMessage: return "missing_message";
    case ChannelError::kPublishMissed: return "publish_missed";
    case ChannelError::kPublishTooLate: return "publish_too_late";
    case ChannelError::kTransmissionFailed: return "transmission_failed";
    case ChannelError::kEventOverwritten: return "event_overwritten";
    case ChannelError::kReassemblyFailed: return "reassembly_failed";
    case ChannelError::kQueueOverflow: return "queue_overflow";
  }
  return "unknown";
}

}  // namespace rtec
