#pragma once

#include <memory>
#include <set>

#include "core/binding.hpp"
#include "core/hrt_engine.hpp"
#include "core/node_context.hpp"
#include "core/nrt_engine.hpp"
#include "core/srt_engine.hpp"
#include "sched/priority_map.hpp"

/// \file middleware.hpp
/// The per-node event channel handler: owns the three class engines,
/// performs subject→etag binding at announce/subscribe time, programs the
/// controller's acceptance filters, and dispatches received frames to the
/// right engine by the priority field of the identifier.
///
/// This is the component the paper calls "the middleware": it "rigorously
/// has to enforce" the priority relation 0 <= P_HRT < P_SRT < P_NRT, hides
/// all network detail behind the channel abstractions, and implements
/// delivery-time jitter removal, missing-message detection, EDF promotion
/// and fragmentation.

namespace rtec {

class Middleware {
 public:
  struct Config {
    /// Deadline→priority mapping used by this node's SRT engine. Must be
    /// identical on all nodes for global EDF to be meaningful.
    DeadlinePriorityMap::Config srt_map{};
    /// Identifier of the network segment this node lives on (multi-network
    /// deployments; used for origin tagging).
    std::uint8_t network_id = 0;
  };

  Middleware(const NodeContext& ctx, BindingRegistry& binding, Config cfg);

  Middleware(const Middleware&) = delete;
  Middleware& operator=(const Middleware&) = delete;

  [[nodiscard]] NodeId node() const { return ctx_.node; }
  [[nodiscard]] const NodeContext& context() const { return ctx_; }
  [[nodiscard]] BindingRegistry& binding() { return binding_; }

  /// Marks a TxNode as a gateway that forwards events from other network
  /// segments; frames sent by it are treated as remote-origin for the
  /// LocalOnly subscriber filter. Distributed at configuration time.
  void add_gateway_node(NodeId gateway) { gateways_.insert(gateway); }

  /// Binds (or re-uses) the etag for `subject`.
  Expected<Etag, ChannelError> bind(Subject subject) {
    return binding_.bind(subject);
  }

  /// Programs the controller's hardware acceptance filtering for a newly
  /// subscribed etag — the point of dynamic binding (§2.1): "the local
  /// communication controller filters all messages that don't match the
  /// subject out of the message stream", so unsubscribed traffic never
  /// reaches this node's CPU. The first call narrows the controller from
  /// promiscuous to selective and installs the infrastructure etags
  /// (clock sync, binding protocol) alongside. Channel classes call this
  /// from subscribe(); cancellation keeps the filter (the table is only
  /// rebuilt at reconfiguration, as on real controllers).
  void add_subscription_filter(Etag etag);

  /// Frames that reached this node's middleware (post-hardware-filter) —
  /// lets tests and benches quantify the CPU offload.
  [[nodiscard]] std::uint64_t rx_frames_seen() const { return rx_frames_seen_; }

  // Engine access for the channel classes and for instrumentation.
  [[nodiscard]] HrtEngine& hrt() { return hrt_; }
  [[nodiscard]] SrtEngine& srt() { return srt_; }
  [[nodiscard]] NrtEngine& nrt() { return nrt_; }
  [[nodiscard]] const HrtEngine& hrt() const { return hrt_; }
  [[nodiscard]] const SrtEngine& srt() const { return srt_; }
  [[nodiscard]] const NrtEngine& nrt() const { return nrt_; }

 private:
  void dispatch(const CanFrame& frame, TimePoint bus_time);

  NodeContext ctx_;
  BindingRegistry& binding_;
  Config cfg_;
  HrtEngine hrt_;
  SrtEngine srt_;
  NrtEngine nrt_;
  std::set<NodeId> gateways_;
  std::set<Etag> filtered_etags_;
  std::uint64_t rx_frames_seen_ = 0;
};

}  // namespace rtec
