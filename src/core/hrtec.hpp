#pragma once

#include <optional>

#include "core/middleware.hpp"

/// \file hrtec.hpp
/// Hard real-time event channel — the application-facing class of Fig. 1:
///
///   class hrtec {
///     hrtec(void);
///     int announce(subject, attribute_list, exception_handler);
///     int publish(event);
///     int subscribe(subject, attribute_list, event_queue, not_handler,
///                   exception_handler);
///     int cancelSubscription(void);
///   }
///
/// Modernizations (documented deviations): `int` error returns become
/// Expected<void, ChannelError>; the event_queue argument becomes an
/// attr::QueueCapacity attribute (the middleware owns the "predefined
/// memory area" and hands events out via getEvent()); a channel object is
/// bound to a node's middleware at construction.

namespace rtec {

class Hrtec {
 public:
  explicit Hrtec(Middleware& mw) : mw_{mw} {}
  Hrtec(const Hrtec&) = delete;
  Hrtec& operator=(const Hrtec&) = delete;
  ~Hrtec();

  /// Publisher setup: binds the subject, verifies the offline slot
  /// reservation for (subject, this node) and arms the slot machinery.
  Expected<void, ChannelError> announce(Subject subject,
                                        const AttributeList& attrs,
                                        ExceptionHandler exception_handler);

  /// Releases the publisher registration (local operation).
  Expected<void, ChannelError> cancelPublication();

  /// Stages an event for the next reserved slot instance. Must be called
  /// before the slot's latest ready time (LST − ΔT_wait) to make that
  /// instance; later publications ride the following instance.
  Expected<void, ChannelError> publish(Event event);

  /// Subscriber setup: binds the subject and arms the per-slot reception
  /// windows with missing-message detection.
  Expected<void, ChannelError> subscribe(Subject subject,
                                         const AttributeList& attrs,
                                         NotificationHandler not_handler,
                                         ExceptionHandler exception_handler);

  /// Strictly local: releases the resources in the local event handler
  /// (§2.2.1). Only subscribers can dynamically leave a HRTEC.
  Expected<void, ChannelError> cancelSubscription();

  /// Retrieves the next delivered event from the subscription's queue
  /// (called from the notification handler, §2.2.1).
  [[nodiscard]] std::optional<Event> getEvent();

  /// The channel's guaranteed transport latency (§2.2: "the interval
  /// between the point in time when an event message becomes ready and
  /// its delivery"): ΔT_wait + WCTT of the channel's widest reserved
  /// slot. Lets applications reason about the non-functional attributes
  /// of the channel without touching network internals. Requires a prior
  /// announce() or subscribe().
  [[nodiscard]] Expected<Duration, ChannelError> guaranteed_latency() const;

  [[nodiscard]] std::optional<Subject> subject() const { return subject_; }

 private:
  Middleware& mw_;
  std::optional<Subject> subject_;
  std::optional<Etag> announced_;
  HrtEngine::Subscription* sub_ = nullptr;
};

}  // namespace rtec
