#pragma once

#include <string>

#include "core/middleware.hpp"
#include "core/node.hpp"

/// \file status.hpp
/// Human-readable status dumps of a node's middleware — the "what is this
/// node doing" debugging primitive. Used by examples (RTEC_LOG=info) and
/// handy from a debugger.

namespace rtec {

/// Multi-line summary of a middleware's engines: per-class counters,
/// queue depths, controller error state.
[[nodiscard]] std::string middleware_status(const Middleware& mw);

/// Status of a whole node (adds clock reading and sync role).
[[nodiscard]] std::string node_status(const Node& node);

}  // namespace rtec
