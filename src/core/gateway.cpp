#include "core/gateway.hpp"

#include <utility>

#include "trace/registry.hpp"

namespace rtec {

void Gateway::export_metrics(trace::MetricsRegistry& reg,
                             const std::string& prefix) const {
  const Counters c = counters();
  reg.set(prefix + ".forwarded_a_to_b", c.forwarded_a_to_b);
  reg.set(prefix + ".forwarded_b_to_a", c.forwarded_b_to_a);
  reg.set(prefix + ".forward_failures", c.forward_failures);
}

Expected<void, ChannelError> Gateway::bridge_srt(Subject subject,
                                                 Duration fwd_deadline,
                                                 Duration fwd_expiration,
                                                 bool forward_transit) {
  const auto ab = make_srt_half(a_, b_, *link_.a_to_b, subject, fwd_deadline,
                                fwd_expiration, forward_transit, dir_a_to_b_);
  if (!ab) return ab;
  return make_srt_half(b_, a_, *link_.b_to_a, subject, fwd_deadline,
                       fwd_expiration, forward_transit, dir_b_to_a_);
}

Expected<void, ChannelError> Gateway::make_srt_half(
    Node& from, Node& to, HandoffChannel& chan, Subject subject,
    Duration fwd_deadline, Duration fwd_expiration, bool forward_transit,
    DirectionCounters& dir) {
  auto bridge = std::make_unique<SrtBridge>();
  bridge->sub = std::make_unique<Srtec>(from.middleware());
  bridge->pub = std::make_unique<Srtec>(to.middleware());

  // The exception handler runs in the publish (destination) segment's
  // context — the same single-writer context as dir's success counter.
  const auto announced = bridge->pub->announce(
      subject,
      AttributeList{attr::Deadline{fwd_deadline},
                    attr::Expiration{fwd_expiration}},
      [&dir](const ExceptionInfo&) { ++dir.failures; });
  if (!announced) return announced;

  Srtec* sub = bridge->sub.get();
  Srtec* pub = bridge->pub.get();
  Simulator* from_sim = &from.middleware().context().sim;
  // LocalOnly on the gateway's own subscription pins the subject to a
  // single hop: remote-origin traffic (events another gateway forwarded
  // into this segment) is ignored, which keeps the design loop-free for
  // any topology. Transit mode drops the filter so a chain of gateways
  // can relay the subject hop by hop — the near segment's own forwards
  // cannot echo back regardless, because a CAN sender never receives its
  // own frames; only a *cycle* of bridges could loop, and callers enable
  // transit only on statically verified (acyclic, RTEC-T002) topologies.
  //
  // Draining the delivery queue in one pass keeps FIFO order: each event
  // gets the channel's next sequence number and the same deterministic
  // release stamp (delivery time + forward latency), so bursts delivered
  // in one slot are re-published on the far side in arrival order.
  AttributeList sub_attrs;
  if (!forward_transit) sub_attrs.add(attr::LocalOnly{});
  const auto subscribed = bridge->sub->subscribe(
      subject, sub_attrs,
      [sub, pub, &chan, &dir, from_sim] {
        while (auto event = sub->getEvent()) {
          chan.post(from_sim->now(),
                    [pub, &dir, content = std::move(event->content)]() mutable {
                      Event fwd;
                      fwd.content = std::move(content);
                      // Fresh timing attributes on the destination
                      // segment's timeline come from the publish-side
                      // channel defaults.
                      if (pub->publish(std::move(fwd))) {
                        ++dir.forwarded;
                      } else {
                        ++dir.failures;
                      }
                    });
        }
      },
      nullptr);
  if (!subscribed) return subscribed;

  srt_bridges_.push_back(std::move(bridge));
  return {};
}

Expected<void, ChannelError> Gateway::bridge_nrt(Subject subject,
                                                 bool fragmented,
                                                 Priority priority) {
  const auto ab = make_nrt_half(a_, b_, *link_.a_to_b, subject, fragmented,
                                priority, dir_a_to_b_);
  if (!ab) return ab;
  return make_nrt_half(b_, a_, *link_.b_to_a, subject, fragmented, priority,
                       dir_b_to_a_);
}

Expected<void, ChannelError> Gateway::make_nrt_half(
    Node& from, Node& to, HandoffChannel& chan, Subject subject,
    bool fragmented, Priority priority, DirectionCounters& dir) {
  auto bridge = std::make_unique<NrtBridge>();
  bridge->sub = std::make_unique<Nrtec>(from.middleware());
  bridge->pub = std::make_unique<Nrtec>(to.middleware());

  AttributeList attrs{attr::FixedPriority{priority}};
  if (fragmented) attrs.add(attr::Fragmentation{true});
  const auto announced = bridge->pub->announce(
      subject, attrs, [&dir](const ExceptionInfo&) { ++dir.failures; });
  if (!announced) return announced;

  Nrtec* sub = bridge->sub.get();
  Nrtec* pub = bridge->pub.get();
  Simulator* from_sim = &from.middleware().context().sim;
  AttributeList sub_attrs{attr::LocalOnly{}};
  if (fragmented) sub_attrs.add(attr::Fragmentation{true});
  const auto subscribed = bridge->sub->subscribe(
      subject, sub_attrs,
      [sub, pub, &chan, &dir, from_sim] {
        while (auto event = sub->getEvent()) {
          chan.post(from_sim->now(),
                    [pub, &dir, content = std::move(event->content)]() mutable {
                      Event fwd;
                      fwd.content = std::move(content);
                      if (pub->publish(std::move(fwd))) {
                        ++dir.forwarded;
                      } else {
                        ++dir.failures;
                      }
                    });
        }
      },
      nullptr);
  if (!subscribed) return subscribed;

  nrt_bridges_.push_back(std::move(bridge));
  return {};
}

}  // namespace rtec
