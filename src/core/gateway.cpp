#include "core/gateway.hpp"

namespace rtec {

Expected<void, ChannelError> Gateway::bridge_srt(Subject subject,
                                                 Duration fwd_deadline,
                                                 Duration fwd_expiration) {
  const auto ab = make_srt_half(a_, b_, subject, fwd_deadline, fwd_expiration,
                                &Counters::forwarded_a_to_b);
  if (!ab) return ab;
  return make_srt_half(b_, a_, subject, fwd_deadline, fwd_expiration,
                       &Counters::forwarded_b_to_a);
}

Expected<void, ChannelError> Gateway::make_srt_half(
    Node& from, Node& to, Subject subject, Duration fwd_deadline,
    Duration fwd_expiration, std::uint64_t Counters::*counter) {
  auto bridge = std::make_unique<SrtBridge>();
  bridge->sub = std::make_unique<Srtec>(from.middleware());
  bridge->pub = std::make_unique<Srtec>(to.middleware());

  const auto announced = bridge->pub->announce(
      subject,
      AttributeList{attr::Deadline{fwd_deadline},
                    attr::Expiration{fwd_expiration}},
      [this](const ExceptionInfo&) { ++counters_.forward_failures; });
  if (!announced) return announced;

  Srtec* sub = bridge->sub.get();
  Srtec* pub = bridge->pub.get();
  // LocalOnly is essential on the gateway's own subscription: without it
  // the A-side gateway stack would pick up events forwarded *into* A by
  // the B→A half and bounce them back (a two-gateway loop; with one
  // gateway object the sender-exclusion already prevents it, but the
  // filter keeps the design loop-free for any topology).
  const auto subscribed = bridge->sub->subscribe(
      subject, AttributeList{attr::LocalOnly{}},
      [this, sub, pub, counter] {
        while (auto event = sub->getEvent()) {
          Event fwd;
          fwd.content = std::move(event->content);
          // Fresh timing attributes on the destination segment's timeline
          // come from the publish-side channel defaults.
          if (pub->publish(std::move(fwd))) {
            ++(counters_.*counter);
          } else {
            ++counters_.forward_failures;
          }
        }
      },
      nullptr);
  if (!subscribed) return subscribed;

  srt_bridges_.push_back(std::move(bridge));
  return {};
}

Expected<void, ChannelError> Gateway::bridge_nrt(Subject subject,
                                                 bool fragmented,
                                                 Priority priority) {
  const auto ab = make_nrt_half(a_, b_, subject, fragmented, priority,
                                &Counters::forwarded_a_to_b);
  if (!ab) return ab;
  return make_nrt_half(b_, a_, subject, fragmented, priority,
                       &Counters::forwarded_b_to_a);
}

Expected<void, ChannelError> Gateway::make_nrt_half(
    Node& from, Node& to, Subject subject, bool fragmented, Priority priority,
    std::uint64_t Counters::*counter) {
  auto bridge = std::make_unique<NrtBridge>();
  bridge->sub = std::make_unique<Nrtec>(from.middleware());
  bridge->pub = std::make_unique<Nrtec>(to.middleware());

  AttributeList attrs{attr::FixedPriority{priority}};
  if (fragmented) attrs.add(attr::Fragmentation{true});
  const auto announced = bridge->pub->announce(
      subject, attrs,
      [this](const ExceptionInfo&) { ++counters_.forward_failures; });
  if (!announced) return announced;

  Nrtec* sub = bridge->sub.get();
  Nrtec* pub = bridge->pub.get();
  AttributeList sub_attrs{attr::LocalOnly{}};
  if (fragmented) sub_attrs.add(attr::Fragmentation{true});
  const auto subscribed = bridge->sub->subscribe(
      subject, sub_attrs,
      [this, sub, pub, counter] {
        while (auto event = sub->getEvent()) {
          Event fwd;
          fwd.content = std::move(event->content);
          if (pub->publish(std::move(fwd))) {
            ++(counters_.*counter);
          } else {
            ++counters_.forward_failures;
          }
        }
      },
      nullptr);
  if (!subscribed) return subscribed;

  nrt_bridges_.push_back(std::move(bridge));
  return {};
}

}  // namespace rtec
