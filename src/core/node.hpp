#pragma once

#include <memory>

#include "canbus/bus.hpp"
#include "core/middleware.hpp"
#include "time/sync.hpp"

/// \file node.hpp
/// One smart sensor/actuator node: a CAN controller, a drifting local
/// clock, the event-channel middleware, and (optionally) a clock-sync role.

namespace rtec {

class Node {
 public:
  struct ClockParams {
    Duration initial_offset = Duration::zero();
    std::int64_t drift_ppb = 0;
    Duration granularity = Duration::microseconds(1);
  };

  Node(Simulator& sim, CanBus& bus, BindingRegistry& binding,
       const Calendar* calendar, NodeId id, ClockParams clock_params,
       Middleware::Config mw_cfg);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return controller_.node(); }
  [[nodiscard]] CanController& controller() { return controller_; }
  [[nodiscard]] const CanController& controller() const { return controller_; }
  [[nodiscard]] LocalClock& clock() { return clock_; }
  [[nodiscard]] const LocalClock& clock() const { return clock_; }
  [[nodiscard]] Middleware& middleware() { return middleware_; }
  [[nodiscard]] const Middleware& middleware() const { return middleware_; }

  /// Installs the clock-sync master role on this node (at most one per
  /// bus). Does not start rounds yet — see SyncMaster::start_at_local.
  SyncMaster& make_sync_master(const SyncConfig& cfg);
  /// Installs the clock-sync slave role on this node.
  SyncSlave& make_sync_slave(const SyncConfig& cfg);

  [[nodiscard]] SyncMaster* sync_master() { return sync_master_.get(); }
  [[nodiscard]] SyncSlave* sync_slave() { return sync_slave_.get(); }

 private:
  CanController controller_;
  LocalClock clock_;
  Middleware middleware_;
  std::unique_ptr<SyncMaster> sync_master_;
  std::unique_ptr<SyncSlave> sync_slave_;
};

}  // namespace rtec
