#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "core/subject.hpp"
#include "util/time_types.hpp"

/// \file errors.hpp
/// Error codes returned by channel operations and the exception-
/// notification mechanism of the paper's API: exceptional runtime
/// situations (missed deadline, expired validity, missing HRT message,
/// ...) are reported asynchronously through the exception handler passed
/// to announce()/subscribe(), enabling "corrective application related
/// actions" (§5).

namespace rtec {

enum class ChannelError : std::uint8_t {
  // --- API/setup errors (returned synchronously) ---
  kNotAnnounced,       ///< publish before announce
  kAlreadyAnnounced,   ///< duplicate announce on one channel object
  kNotSubscribed,      ///< cancelSubscription/getEvent without subscribe
  kAlreadySubscribed,  ///< duplicate subscribe on one channel object
  kNoReservation,      ///< HRT: calendar has no slot for (subject, node)
  kInvalidAttribute,   ///< attribute list inconsistent for the class
  kPayloadTooLarge,    ///< RT event exceeds the reserved message size
  kPriorityOutOfRange, ///< NRT fixed priority outside [251, 255]
  kBindingFailed,      ///< subject<->etag binding could not be established
  kBusOff,             ///< local controller is bus-off

  // --- runtime exceptions (delivered via ExceptionHandler) ---
  kDeadlineMissed,     ///< SRT: transmission deadline passed, still queued
  kExpired,            ///< SRT: validity expired; removed from send queue
  kMissingMessage,     ///< HRT subscriber: reserved slot elapsed, no event
  kPublishMissed,      ///< HRT publisher: periodic slot had nothing to send
  kPublishTooLate,     ///< HRT publisher: event arrived after latest ready
  kTransmissionFailed, ///< HRT: faults exceeded the assumed omission degree
  kEventOverwritten,   ///< HRT publisher: unsent event replaced by newer one
  kReassemblyFailed,   ///< NRT subscriber: fragment stream inconsistent
  kQueueOverflow,      ///< subscriber event queue overflowed (event lost)
};

/// Human-readable tag for logs and test diagnostics.
[[nodiscard]] std::string_view to_string(ChannelError e);

/// Context delivered to exception handlers.
struct ExceptionInfo {
  ChannelError error{};
  Subject subject;
  TimePoint when;  ///< local time at which the condition was detected
};

using ExceptionHandler = std::function<void(const ExceptionInfo&)>;

/// Asynchronous notification callback: invoked after the middleware stored
/// the event in the subscription's queue; the application retrieves it with
/// getEvent() (paper §2.2.1).
using NotificationHandler = std::function<void()>;

}  // namespace rtec
