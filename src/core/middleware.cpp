#include "core/middleware.hpp"

namespace rtec {

Middleware::Middleware(const NodeContext& ctx, BindingRegistry& binding,
                       Config cfg)
    : ctx_{ctx},
      binding_{binding},
      cfg_{cfg},
      hrt_{ctx},
      srt_{ctx, cfg.srt_map, cfg.network_id},
      nrt_{ctx} {
  ctx_.controller.add_rx_listener(
      [this](const CanFrame& frame, TimePoint t) { dispatch(frame, t); });
}

void Middleware::add_subscription_filter(Etag etag) {
  if (filtered_etags_.empty()) {
    // Narrowing from promiscuous: the infrastructure channels must keep
    // flowing (clock sync reference/follow-up, binding request/reply).
    for (const Etag infra :
         {kSyncRefEtag, kSyncFollowEtag, kBindingRequestEtag, kBindingReplyEtag}) {
      ctx_.controller.add_acceptance_filter({infra, kMaxEtag});
      filtered_etags_.insert(infra);
    }
  }
  if (filtered_etags_.insert(etag).second)
    ctx_.controller.add_acceptance_filter({etag, kMaxEtag});
}

void Middleware::dispatch(const CanFrame& frame, TimePoint bus_time) {
  if (!frame.extended) return;  // base-format frames are not ours
  ++rx_frames_seen_;
  const CanIdFields fields = decode_can_id(frame.id);
  const bool remote = gateways_.contains(fields.tx_node);
  switch (classify_priority(fields.priority)) {
    case TrafficClass::kHrt:
      hrt_.on_frame(fields, frame, bus_time);
      break;
    case TrafficClass::kSrt:
      srt_.on_frame(fields, frame, bus_time, remote);
      break;
    case TrafficClass::kNrt:
      nrt_.on_frame(fields, frame, bus_time, remote);
      break;
  }
}

}  // namespace rtec
