#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/attributes.hpp"
#include "core/errors.hpp"
#include "core/event.hpp"
#include "core/node_context.hpp"
#include "core/subscription.hpp"
#include "sched/edf_queue.hpp"
#include "sched/id_codec.hpp"
#include "sched/priority_map.hpp"
#include "util/expected.hpp"

/// \file srt_engine.hpp
/// Soft real-time event channels (paper §2.2.2, §3.4): no reservations;
/// events carry a transmission deadline and an expiration (validity) time.
///
/// Local EDF: all queued SRT messages of this node are ordered by deadline;
/// only the earliest occupies a controller TX mailbox.
/// Global EDF via priorities: the mailbox identifier carries the priority
/// band from DeadlinePriorityMap; as laxity shrinks across Δt_p boundaries
/// the engine *promotes* the message by rewriting the mailbox identifier
/// (impossible while the frame is on the wire — exactly the overhead and
/// fidelity limits E6/E10 measure).
///
/// Exception semantics (§2.2.2): a message still unsent at its deadline
/// raises kDeadlineMissed but keeps competing (best effort); when its
/// expiration passes it is removed from the send queue entirely and
/// kExpired is raised.

namespace rtec {

class SrtEngine {
 public:
  struct Counters {
    std::uint64_t published = 0;
    std::uint64_t sent = 0;             ///< successfully transmitted
    std::uint64_t sent_by_deadline = 0; ///< ... with deadline met
    std::uint64_t deadline_missed = 0;  ///< kDeadlineMissed raised
    std::uint64_t expired = 0;          ///< dropped from the send queue
    std::uint64_t promotions = 0;       ///< successful mailbox id rewrites
    std::uint64_t promotion_blocked = 0;///< rewrite refused (frame on wire)
    std::uint64_t preemptions = 0;      ///< mailbox swapped for earlier deadline
    std::uint64_t delivered = 0;        ///< events handed to subscribers
  };

  struct Subscription : SubscriptionBase {
    using SubscriptionBase::SubscriptionBase;
    bool cancelled = false;
  };

  SrtEngine(const NodeContext& ctx, DeadlinePriorityMap::Config map_cfg,
            std::uint8_t network_id);

  Expected<void, ChannelError> announce(Subject subject, Etag etag,
                                        const AttributeList& attrs,
                                        ExceptionHandler on_exception);
  Expected<void, ChannelError> cancel_publication(Etag etag);

  /// Queues the event. Absolute deadline/expiration come from the event's
  /// attributes; TimePoint::max() means "apply the channel defaults
  /// relative to now".
  Expected<void, ChannelError> publish(Etag etag, Event event);

  Expected<Subscription*, ChannelError> subscribe(Subject subject, Etag etag,
                                                  const AttributeList& attrs,
                                                  NotificationHandler notify,
                                                  ExceptionHandler on_exception);
  void cancel_subscription(Subscription* sub);

  /// RX dispatch for frames in the SRT priority band.
  void on_frame(const CanIdFields& fields, const CanFrame& frame,
                TimePoint bus_time, bool remote_origin);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const DeadlinePriorityMap& priority_map() const { return map_; }
  [[nodiscard]] std::size_t queue_length() const {
    return queue_.size() + (in_flight_ ? 1 : 0);
  }

 private:
  struct Publication {
    Subject subject;
    Etag etag = 0;
    Duration default_deadline = Duration::milliseconds(10);
    Duration default_expiration = Duration::milliseconds(20);
    ExceptionHandler on_exception;
  };

  struct Message {
    std::uint64_t uid = 0;
    Etag etag = 0;
    CanFrame frame;
    TimePoint deadline;
    TimePoint expiration;
    TimePoint enqueued;
  };

  struct InFlight {
    Message msg;
    CanController::MailboxId mailbox = 0;
    Priority current_priority = kSrtPriorityMax;
  };

  void pump();
  void start_transmission(Message msg);
  void arm_promotion();
  void on_promotion_due();
  void on_tx_result(std::uint64_t uid, bool success);
  void on_deadline(std::uint64_t uid);
  void on_expiration(std::uint64_t uid);
  void raise(Etag etag, ChannelError e);

  NodeContext ctx_;
  DeadlinePriorityMap map_;
  std::uint8_t network_id_;
  std::map<Etag, Publication> publications_;
  EdfQueue<Message> queue_;
  std::map<std::uint64_t, EdfQueue<Message>::Handle> queued_handles_;
  std::optional<InFlight> in_flight_;
  Simulator::TimerHandle promotion_timer_;
  struct MsgTimers {
    Simulator::TimerHandle deadline;
    Simulator::TimerHandle expiration;
    Etag etag = 0;
    bool deadline_reported = false;
  };
  std::map<std::uint64_t, MsgTimers> timers_;
  std::vector<std::unique_ptr<Subscription>> subscriptions_;
  std::uint64_t next_uid_ = 1;
  Counters counters_;
};

}  // namespace rtec
