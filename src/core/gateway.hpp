#pragma once

#include <memory>
#include <vector>

#include "core/node.hpp"
#include "core/nrtec.hpp"
#include "core/srtec.hpp"

/// \file gateway.hpp
/// Event-channel gateway between two network segments (the architecture
/// of Kaiser/Brudna's WFCS 2002 interoperability paper, referenced as
/// §2.2.1's multi-network scenario: "publishers and subscribers are
/// connected by a channel which spans multiple networks").
///
/// A gateway is a node with one protocol stack per attached network. For
/// each bridged subject it subscribes on one side and re-publishes on the
/// other. Because a CAN sender never receives its own frames, the
/// opposite-direction subscription on the same controller cannot echo a
/// forwarded event back — bidirectional bridging is loop-free by
/// construction.
///
/// Subscribers can exclude forwarded traffic with attr::LocalOnly: the
/// scenario registers the gateway's TxNode system-wide
/// (Scenario::register_gateway), and receiving middlewares tag frames
/// from it as remote-origin. HRT channels are deliberately *not*
/// bridgeable: a reservation is only meaningful inside one network's
/// calendar (forward an HRT stream by subscribing at the gateway and
/// publishing into a slot reserved for the gateway on the other side).

namespace rtec {

class Gateway {
 public:
  /// \param side_a node on network A  \param side_b node on network B
  Gateway(Node& side_a, Node& side_b) : a_{side_a}, b_{side_b} {}

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  struct Counters {
    std::uint64_t forwarded_a_to_b = 0;
    std::uint64_t forwarded_b_to_a = 0;
    std::uint64_t forward_failures = 0;
  };

  /// Bridges an SRT subject in both directions. Forwarded events get a
  /// fresh transmission deadline `fwd_deadline` (and expiration
  /// `fwd_expiration`) relative to the forwarding instant — the origin
  /// network's deadline is not meaningful on the next segment's timeline.
  Expected<void, ChannelError> bridge_srt(Subject subject,
                                          Duration fwd_deadline,
                                          Duration fwd_expiration);

  /// Bridges an NRT subject in both directions (fragmented payloads are
  /// reassembled here and re-fragmented on the far side).
  Expected<void, ChannelError> bridge_nrt(Subject subject, bool fragmented,
                                          Priority priority);

  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct SrtBridge {
    std::unique_ptr<Srtec> sub;
    std::unique_ptr<Srtec> pub;
  };
  struct NrtBridge {
    std::unique_ptr<Nrtec> sub;
    std::unique_ptr<Nrtec> pub;
  };

  Expected<void, ChannelError> make_srt_half(Node& from, Node& to,
                                             Subject subject,
                                             Duration fwd_deadline,
                                             Duration fwd_expiration,
                                             std::uint64_t Counters::*counter);
  Expected<void, ChannelError> make_nrt_half(Node& from, Node& to,
                                             Subject subject, bool fragmented,
                                             Priority priority,
                                             std::uint64_t Counters::*counter);

  Node& a_;
  Node& b_;
  std::vector<std::unique_ptr<SrtBridge>> srt_bridges_;
  std::vector<std::unique_ptr<NrtBridge>> nrt_bridges_;
  Counters counters_;
};

}  // namespace rtec
