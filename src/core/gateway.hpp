#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "core/nrtec.hpp"
#include "core/srtec.hpp"
#include "sim/handoff.hpp"

/// \file gateway.hpp
/// Event-channel gateway between two network segments (the architecture
/// of Kaiser/Brudna's WFCS 2002 interoperability paper, referenced as
/// §2.2.1's multi-network scenario: "publishers and subscribers are
/// connected by a channel which spans multiple networks").
///
/// A gateway is a node with one protocol stack per attached network. For
/// each bridged subject it subscribes on one side and re-publishes on the
/// other. Because a CAN sender never receives its own frames, the
/// opposite-direction subscription on the same controller cannot echo a
/// forwarded event back — bidirectional bridging is loop-free by
/// construction.
///
/// Forwarding is store-and-forward through a pair of handoff channels
/// (Scenario::link_gateway): an event delivered to the gateway's
/// subscriber stack at time t is re-published on the far segment at
/// exactly t + forward latency, and events delivered in the same slot
/// keep their delivery (FIFO) order via the channel's sequence numbers.
/// The deterministic release stamp is what makes the forwarding path
/// shard-safe: under the parallel engine the publish runs in the far
/// segment's own execution context, never from the near segment's thread.
///
/// Subscribers can exclude forwarded traffic with attr::LocalOnly: the
/// scenario registers the gateway's TxNode system-wide
/// (Scenario::register_gateway / link_gateway), and receiving middlewares
/// tag frames from it as remote-origin. HRT channels are deliberately
/// *not* bridgeable: a reservation is only meaningful inside one
/// network's calendar (forward an HRT stream by subscribing at the
/// gateway and publishing into a slot reserved for the gateway on the
/// other side).

namespace rtec {

namespace trace {
class MetricsRegistry;
}  // namespace trace

/// The pair of directed handoff channels one gateway forwards through,
/// created by Scenario::link_gateway (the scenario knows the segment→shard
/// partition; the gateway does not).
struct GatewayLink {
  HandoffChannel* a_to_b = nullptr;
  HandoffChannel* b_to_a = nullptr;
};

class Gateway {
 public:
  /// \param side_a node on network A  \param side_b node on network B
  /// \param link  handoff channels from Scenario::link_gateway(a, b, ...)
  Gateway(Node& side_a, Node& side_b, GatewayLink link)
      : a_{side_a}, b_{side_b}, link_{link} {
    assert(link.a_to_b != nullptr && link.b_to_a != nullptr);
  }

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  struct Counters {
    std::uint64_t forwarded_a_to_b = 0;
    std::uint64_t forwarded_b_to_a = 0;
    std::uint64_t forward_failures = 0;
  };

  /// Bridges an SRT subject in both directions. Forwarded events get a
  /// fresh transmission deadline `fwd_deadline` (and expiration
  /// `fwd_expiration`) relative to the forwarding instant — the origin
  /// network's deadline is not meaningful on the next segment's timeline.
  ///
  /// With `forward_transit` false (the default) the gateway only forwards
  /// events that originate on the near segment: traffic another gateway
  /// forwarded *into* that segment is ignored, so a subject never travels
  /// more than one hop. Setting it true lifts that filter and enables
  /// multi-hop routes across a chain of gateways. Transit forwarding is
  /// only loop-free when the subject's bridge graph is acyclic (a cycle
  /// would circulate every event forever) — exactly the property
  /// rtec-verify's RTEC-T002 check establishes statically, so only bridge
  /// transit on verified topologies.
  Expected<void, ChannelError> bridge_srt(Subject subject,
                                          Duration fwd_deadline,
                                          Duration fwd_expiration,
                                          bool forward_transit = false);

  /// Bridges an NRT subject in both directions (fragmented payloads are
  /// reassembled here and re-fragmented on the far side).
  Expected<void, ChannelError> bridge_nrt(Subject subject, bool fragmented,
                                          Priority priority);

  /// Counter snapshot. Per-direction counts are maintained on the
  /// direction's *destination* shard (single writer each), so the
  /// composed snapshot is only meaningful between run calls.
  [[nodiscard]] Counters counters() const {
    Counters c;
    c.forwarded_a_to_b = dir_a_to_b_.forwarded;
    c.forwarded_b_to_a = dir_b_to_a_.forwarded;
    c.forward_failures = dir_a_to_b_.failures + dir_b_to_a_.failures;
    return c;
  }

  /// Snapshots counters() into a metrics registry under `<prefix>.`
  /// (same between-runs caveat as counters()).
  void export_metrics(trace::MetricsRegistry& reg,
                      const std::string& prefix) const;

 private:
  /// Written only from the direction's destination segment context.
  struct DirectionCounters {
    std::uint64_t forwarded = 0;
    std::uint64_t failures = 0;
  };
  struct SrtBridge {
    std::unique_ptr<Srtec> sub;
    std::unique_ptr<Srtec> pub;
  };
  struct NrtBridge {
    std::unique_ptr<Nrtec> sub;
    std::unique_ptr<Nrtec> pub;
  };

  Expected<void, ChannelError> make_srt_half(Node& from, Node& to,
                                             HandoffChannel& chan,
                                             Subject subject,
                                             Duration fwd_deadline,
                                             Duration fwd_expiration,
                                             bool forward_transit,
                                             DirectionCounters& dir);
  Expected<void, ChannelError> make_nrt_half(Node& from, Node& to,
                                             HandoffChannel& chan,
                                             Subject subject, bool fragmented,
                                             Priority priority,
                                             DirectionCounters& dir);

  Node& a_;
  Node& b_;
  GatewayLink link_;
  std::vector<std::unique_ptr<SrtBridge>> srt_bridges_;
  std::vector<std::unique_ptr<NrtBridge>> nrt_bridges_;
  DirectionCounters dir_a_to_b_;
  DirectionCounters dir_b_to_a_;
};

}  // namespace rtec
