#pragma once

#include <cstdint>
#include <string_view>

/// \file subject.hpp
/// Subjects — the content tags of the subject-based addressing scheme
/// (paper §1, §2). A subject is "a tag related to the content of an event
/// ... represented by a unique identifier". Applications typically derive
/// subjects from stable names ("vehicle/wheel_speed/front_left"); the
/// binding protocol later maps each subject to a short network etag.

namespace rtec {

/// Unique identifier of an event type / event channel.
struct Subject {
  std::uint64_t uid = 0;

  friend bool operator==(const Subject&, const Subject&) = default;
  friend auto operator<=>(const Subject&, const Subject&) = default;
};

/// Derives a subject from a stable textual name (FNV-1a, 64-bit). Collision
/// probability is negligible for the system sizes a field bus supports; the
/// binding registry additionally rejects two different names mapping to one
/// uid.
[[nodiscard]] constexpr Subject subject_of(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return Subject{h};
}

}  // namespace rtec
