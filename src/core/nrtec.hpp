#pragma once

#include <optional>

#include "core/middleware.hpp"

/// \file nrtec.hpp
/// Non real-time event channel (§2.2.3): fixed application-chosen priority
/// within the NRT band, best-effort dissemination, optional fragmentation
/// for bulk payloads (memory images, electronic data sheets, test
/// patterns). Fragmentation is an inherent channel attribute declared in
/// the announce()/subscribe() attribute list.

namespace rtec {

class Nrtec {
 public:
  explicit Nrtec(Middleware& mw) : mw_{mw} {}
  Nrtec(const Nrtec&) = delete;
  Nrtec& operator=(const Nrtec&) = delete;
  ~Nrtec();

  Expected<void, ChannelError> announce(Subject subject,
                                        const AttributeList& attrs,
                                        ExceptionHandler exception_handler);
  Expected<void, ChannelError> cancelPublication();

  /// Queues the event; fragmented channels accept payloads up to 2^24-1
  /// bytes, plain channels up to 8 bytes.
  Expected<void, ChannelError> publish(Event event);

  Expected<void, ChannelError> subscribe(Subject subject,
                                         const AttributeList& attrs,
                                         NotificationHandler not_handler,
                                         ExceptionHandler exception_handler);
  Expected<void, ChannelError> cancelSubscription();

  [[nodiscard]] std::optional<Event> getEvent();
  [[nodiscard]] std::optional<Subject> subject() const { return subject_; }

 private:
  Middleware& mw_;
  std::optional<Subject> subject_;
  std::optional<Etag> announced_;
  NrtEngine::Subscription* sub_ = nullptr;
};

}  // namespace rtec
