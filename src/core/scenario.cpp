#include "core/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>

#include "core/gateway.hpp"
#include "sched/calendar_io.hpp"

namespace rtec {

namespace {
Calendar::Config with_bus(Calendar::Config cal, BusConfig bus) {
  cal.bus = bus;
  return cal;
}

/// Feeds a channel's handoff posts into a network's RTEB writer. Posts
/// happen in the source kernel's execution context (see HandoffChannel),
/// so the records interleave deterministically with that segment's frames.
void hook_channel(HandoffChannel& ch, trace::RtebWriter& w) {
  ch.set_post_observer([&w](TimePoint send, TimePoint release,
                            std::uint32_t channel, std::uint64_t seq) {
    w.add_handoff(send, release, channel, seq);
  });
}
}  // namespace

Scenario::Scenario(Config cfg) : cfg_{cfg} {
  assert(cfg.networks >= 1 && cfg.networks <= kMaxNetworks);
  const int shard_count = std::clamp(cfg.shards, 1, cfg.networks);
  for (int s = 0; s < shard_count; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
    engine_.add_shard(*sims_.back());
  }
  engine_.set_threads(cfg.threads == 0 ? static_cast<unsigned>(shard_count)
                                       : cfg.threads);
  engine_.set_lookahead_mode(cfg.lookahead);
  for (int i = 0; i < cfg.networks; ++i)
    networks_.push_back(std::make_unique<Network>(
        segment_sim(i), cfg.bus, with_bus(cfg.calendar, cfg.bus)));
}

void Scenario::run_until(TimePoint t) {
  if (sims_.size() == 1) {
    // Unsharded fast path: gateway channels are unbuffered (they inject
    // straight into the shared kernel), so the plain kernel loop already
    // covers everything the engine would do.
    sims_.front()->run_until(t);
    return;
  }
  engine_.run_until(t);
}

GatewayLink Scenario::link_gateway(const Node& a, const Node& b,
                                   Duration forward_latency) {
  const int net_a = network_of(a);
  const int net_b = network_of(b);
  assert(net_a != net_b && "a gateway bridges two distinct segments");
  register_gateway(a.id(), net_a);
  register_gateway(b.id(), net_b);
  GatewayLink link;
  link.a_to_b = &engine_.link(static_cast<std::size_t>(shard_of(net_a)),
                              static_cast<std::size_t>(shard_of(net_b)),
                              forward_latency);
  link.b_to_a = &engine_.link(static_cast<std::size_t>(shard_of(net_b)),
                              static_cast<std::size_t>(shard_of(net_a)),
                              forward_latency);
  channel_sources_.emplace_back(net_a, link.a_to_b);
  channel_sources_.emplace_back(net_b, link.b_to_a);
  // A recorder attached before this link still sees its handoffs.
  if (auto& rec = networks_[static_cast<std::size_t>(net_a)]->rteb)
    hook_channel(*link.a_to_b, rec->writer());
  if (auto& rec = networks_[static_cast<std::size_t>(net_b)]->rteb)
    hook_channel(*link.b_to_a, rec->writer());
  return link;
}

void Scenario::set_fault_model(std::unique_ptr<FaultModel> model, int network) {
  Network& net = *networks_.at(static_cast<std::size_t>(network));
  net.faults = std::move(model);
  net.bus.set_fault_model(net.faults.get());
}

AttackModel& Scenario::install_attack(std::unique_ptr<AttackModel> attack,
                                      NodeId attacker_id, std::uint64_t seed,
                                      int network) {
  assert(network >= 0 && network < cfg_.networks);
  assert(!nodes_.contains({network, attacker_id}) &&
         "attacker id collides with a legitimate node on this segment");
  Network& net = *networks_.at(static_cast<std::size_t>(network));

  CanController* attacker = nullptr;
  for (const auto& c : net.attackers)
    if (c->node() == attacker_id) attacker = c.get();
  if (attacker == nullptr) {
    net.attackers.push_back(
        std::make_unique<CanController>(segment_sim(network), attacker_id));
    attacker = net.attackers.back().get();
    net.bus.attach(*attacker);
  }

  AttackContext ctx;
  ctx.sim = &segment_sim(network);
  ctx.bus = &net.bus;
  ctx.attacker = attacker;
  ctx.seed = seed;
  ctx.victim_controller = [this, network](NodeId id) -> CanController* {
    const auto it = nodes_.find({network, id});
    return it == nodes_.end() ? nullptr : &it->second->controller();
  };

  net.attacks.push_back(std::move(attack));
  AttackModel& armed = *net.attacks.back();
  armed.arm(ctx);
  return armed;
}

trace::DetectorBank& Scenario::detectors(int network) {
  Network& net = *networks_.at(static_cast<std::size_t>(network));
  if (net.detector_bank == nullptr) {
    net.tap = std::make_unique<trace::StreamTap>(net.bus);
    net.detector_bank = std::make_unique<trace::DetectorBank>();
    net.tap->add(net.detector_bank.get());
  }
  return *net.detector_bank;
}

std::uint64_t Scenario::tapped_deliveries(int network) const {
  const Network& net = *networks_.at(static_cast<std::size_t>(network));
  return net.tap ? net.tap->deliveries() : 0;
}

void Scenario::flush_streams() {
  const TimePoint t = now();
  for (const auto& net : networks_) {
    if (net->tap) net->tap->finish(t);
    if (net->rteb) net->rteb->finish();
  }
}

trace::RtebRecorder& Scenario::record_rteb(int network) {
  return attach_rteb(network, nullptr);
}

trace::RtebRecorder& Scenario::record_rteb_file(const std::string& path,
                                                int network) {
  return attach_rteb(network, &path);
}

trace::RtebRecorder& Scenario::attach_rteb(int network,
                                           const std::string* path) {
  Network& net = *networks_.at(static_cast<std::size_t>(network));
  assert(net.rteb == nullptr && "one RTEB recorder per network");
  const auto net_id = static_cast<std::uint16_t>(network);
  net.rteb = path != nullptr
                 ? std::make_unique<trace::RtebRecorder>(net.bus, net_id, *path)
                 : std::make_unique<trace::RtebRecorder>(net.bus, net_id);
  trace::RtebWriter& w = net.rteb->writer();
  if (net.detector_bank != nullptr) {
    for (std::size_t i = 0; i < net.detector_bank->size(); ++i)
      net.detector_bank->at(i).set_alarm_sink([&w](const trace::Alarm& a) {
        w.add_alarm(a.detector, a.at, a.id, a.score, a.unknown_id);
      });
  }
  for (const auto& [source, channel] : channel_sources_)
    if (source == network) hook_channel(*channel, w);
  return *net.rteb;
}

SpanProfiler& Scenario::enable_profiling() {
  if (profiler_ == nullptr) {
    profiler_ = std::make_unique<SpanProfiler>();
    engine_.set_profiler(profiler_.get());
    for (std::size_t i = 0; i < networks_.size(); ++i) {
      char prefix[40];
      std::snprintf(prefix, sizeof prefix, "net%03zu.bus", i);
      networks_[i]->bus.set_profiler(profiler_.get(), prefix);
    }
  }
  return *profiler_;
}

void Scenario::export_metrics(trace::MetricsRegistry& reg) const {
  char prefix[40];
  // %03zu padding keeps the registry's sorted iteration in instance order
  // for up to 1000 kernels / kMaxNetworks segments.
  for (std::size_t s = 0; s < sims_.size(); ++s) {
    std::snprintf(prefix, sizeof prefix, "kernel%03zu", s);
    trace::export_metrics(reg, prefix, sims_[s]->stats());
  }
  trace::export_metrics(reg, "engine", engine_);
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    const Network& net = *networks_[i];
    std::snprintf(prefix, sizeof prefix, "net%03zu", i);
    const std::string base{prefix};
    trace::export_metrics(reg, base + ".bus", net.bus);
    if (net.tap) trace::export_metrics(reg, base + ".tap", *net.tap);
    if (net.detector_bank)
      trace::export_metrics(reg, base + ".detector", *net.detector_bank);
    if (net.rteb) trace::export_metrics(reg, base + ".rteb", net.rteb->writer());
  }
  if (profiler_) trace::export_metrics(reg, "profile", *profiler_);
}

std::string Scenario::metrics_json() const {
  trace::MetricsRegistry reg;
  export_metrics(reg);
  return reg.to_json();
}

Expected<void, std::string> Scenario::load_calendar_image(
    const std::string& text, int network) {
  const auto parsed = calendar_from_text(text);
  if (!parsed)
    return Unexpected{"line " + std::to_string(parsed.error().line) + ": " +
                      parsed.error().message};
  Network& net = *networks_.at(static_cast<std::size_t>(network));
  if (parsed->config().round_length != net.calendar.config().round_length ||
      parsed->config().gap != net.calendar.config().gap ||
      parsed->config().bus.bitrate_bps !=
          net.calendar.config().bus.bitrate_bps)
    return Unexpected{std::string{
        "image round/gap/bitrate disagree with the scenario configuration"}};
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    if (!net.calendar.reserve(parsed->slot(i)))
      return Unexpected{"slot " + std::to_string(i) +
                        " conflicts with existing reservations"};
  }
  return {};
}

Node& Scenario::add_node(NodeId id, Node::ClockParams clock_params,
                         int network) {
  assert(network >= 0 && network < cfg_.networks);
  assert(!nodes_.contains({network, id}) && "node id taken on this segment");
  Network& net = *networks_.at(static_cast<std::size_t>(network));
  Middleware::Config mw_cfg;
  mw_cfg.srt_map = cfg_.srt_map;
  mw_cfg.network_id = static_cast<std::uint8_t>(network);
  auto node = std::make_unique<Node>(segment_sim(network), net.bus, binding_,
                                     &net.calendar, id, clock_params, mw_cfg);
  for (NodeId gw : net.gateways) node->middleware().add_gateway_node(gw);
  Node& ref = *node;
  nodes_.emplace(std::pair{network, id}, std::move(node));
  id_networks_[id].push_back(network);
  return ref;
}

Node& Scenario::node(NodeId id) { return node(id, network_of(id)); }

Node& Scenario::node(NodeId id, int network) {
  const auto it = nodes_.find({network, id});
  assert(it != nodes_.end());
  return *it->second;
}

int Scenario::network_of(NodeId id) const {
  const auto it = id_networks_.find(id);
  assert(it != id_networks_.end());
  assert(it->second.size() == 1 &&
         "node id is reused across segments — address it by (id, network)");
  return it->second.front();
}

int Scenario::network_of(const Node& n) const {
  const auto it = id_networks_.find(n.id());
  assert(it != id_networks_.end());
  for (const int net : it->second)
    if (nodes_.at({net, n.id()}).get() == &n) return net;
  assert(false && "node does not belong to this scenario");
  return -1;
}

Expected<void, AdmissionError> Scenario::enable_clock_sync(NodeId master,
                                                           Duration lst_offset,
                                                           bool rate_correction) {
  return enable_clock_sync_on(network_of(master), master, lst_offset,
                              rate_correction);
}

Expected<void, AdmissionError> Scenario::enable_clock_sync_on(
    int network, NodeId master, Duration lst_offset, bool rate_correction) {
  Network& net = *networks_.at(static_cast<std::size_t>(network));

  // One slot wide enough for the dlc-0 reference frame plus the dlc-8
  // follow-up: a dlc-8 window with omission degree 1 over-covers both.
  SlotSpec slot;
  slot.lst_offset = lst_offset;
  slot.dlc = 8;
  slot.fault.omission_degree = 1;
  slot.etag = kSyncRefEtag;
  slot.publisher = master;
  slot.periodic = true;
  const auto reserved = net.calendar.reserve(slot);
  if (!reserved) return Unexpected{reserved.error()};
  const std::size_t slot_index = *reserved;

  SyncConfig sync_cfg;
  sync_cfg.rate_correction = rate_correction;
  sync_cfg.period = net.calendar.config().round_length;
  sync_cfg.ref_frame_id = encode_can_id({kHrtPriority, master, kSyncRefEtag});
  sync_cfg.followup_frame_id =
      encode_can_id({kHrtPriority, master, kSyncFollowEtag});

  Node& master_node = node(master, network);
  SyncMaster& sm = master_node.make_sync_master(sync_cfg);
  for (auto& [key, n] : nodes_) {
    if (key.first == network && key.second != master)
      n->make_sync_slave(sync_cfg);
  }

  const Calendar::Instance first =
      net.calendar.instance_at_or_after(slot_index, master_node.clock().now());
  sm.start_at_local(first.ready);
  return {};
}

void Scenario::register_gateway(NodeId gateway_node, int network) {
  Network& net = *networks_.at(static_cast<std::size_t>(network));
  net.gateways.push_back(gateway_node);
  for (auto& [key, n] : nodes_) {
    if (key.first == network) n->middleware().add_gateway_node(gateway_node);
  }
}

Duration Scenario::clock_precision() const {
  Duration worst = Duration::zero();
  for (auto it_a = nodes_.begin(); it_a != nodes_.end(); ++it_a) {
    auto it_b = it_a;
    for (++it_b; it_b != nodes_.end(); ++it_b) {
      const TimePoint a = it_a->second->clock().now();
      const TimePoint b = it_b->second->clock().now();
      const Duration d = a > b ? a - b : b - a;
      if (d > worst) worst = d;
    }
  }
  return worst;
}

Duration Scenario::clock_precision(int network) const {
  Duration worst = Duration::zero();
  for (auto it_a = nodes_.lower_bound({network, NodeId{0}});
       it_a != nodes_.end() && it_a->first.first == network; ++it_a) {
    auto it_b = it_a;
    for (++it_b; it_b != nodes_.end() && it_b->first.first == network;
         ++it_b) {
      const TimePoint a = it_a->second->clock().now();
      const TimePoint b = it_b->second->clock().now();
      const Duration d = a > b ? a - b : b - a;
      if (d > worst) worst = d;
    }
  }
  return worst;
}

}  // namespace rtec
