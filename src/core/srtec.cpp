#include "core/srtec.hpp"

namespace rtec {

Srtec::~Srtec() {
  if (announced_) (void)mw_.srt().cancel_publication(*announced_);
  if (sub_ != nullptr) mw_.srt().cancel_subscription(sub_);
}

Expected<void, ChannelError> Srtec::announce(Subject subject,
                                             const AttributeList& attrs,
                                             ExceptionHandler exception_handler) {
  if (announced_) return Unexpected{ChannelError::kAlreadyAnnounced};
  const auto etag = mw_.bind(subject);
  if (!etag) return Unexpected{etag.error()};
  const auto r =
      mw_.srt().announce(subject, *etag, attrs, std::move(exception_handler));
  if (!r) return r;
  subject_ = subject;
  announced_ = *etag;
  return {};
}

Expected<void, ChannelError> Srtec::cancelPublication() {
  if (!announced_) return Unexpected{ChannelError::kNotAnnounced};
  const auto r = mw_.srt().cancel_publication(*announced_);
  announced_.reset();
  return r;
}

Expected<void, ChannelError> Srtec::publish(Event event) {
  if (!announced_) return Unexpected{ChannelError::kNotAnnounced};
  event.subject = *subject_;
  return mw_.srt().publish(*announced_, std::move(event));
}

Expected<void, ChannelError> Srtec::subscribe(Subject subject,
                                              const AttributeList& attrs,
                                              NotificationHandler not_handler,
                                              ExceptionHandler exception_handler) {
  if (sub_ != nullptr) return Unexpected{ChannelError::kAlreadySubscribed};
  const auto etag = mw_.bind(subject);
  if (!etag) return Unexpected{etag.error()};
  auto r = mw_.srt().subscribe(subject, *etag, attrs, std::move(not_handler),
                               std::move(exception_handler));
  if (!r) return Unexpected{r.error()};
  mw_.add_subscription_filter(*etag);  // hardware routing for this subject
  subject_ = subject;
  sub_ = *r;
  return {};
}

Expected<void, ChannelError> Srtec::cancelSubscription() {
  if (sub_ == nullptr) return Unexpected{ChannelError::kNotSubscribed};
  mw_.srt().cancel_subscription(sub_);
  sub_ = nullptr;
  return {};
}

std::optional<Event> Srtec::getEvent() {
  if (sub_ == nullptr) return std::nullopt;
  return sub_->queue.pop();
}

}  // namespace rtec
