#include "core/nrt_engine.hpp"

#include <algorithm>
#include <cassert>

namespace rtec {

namespace {

enum FragType : std::uint8_t { kSingle = 0, kFirst = 1, kMiddle = 2, kLast = 3 };

std::uint8_t frag_header(std::uint8_t msg_id, FragType type) {
  return static_cast<std::uint8_t>(((msg_id & 0x0f) << 4) |
                                   ((type & 0x03) << 2));
}

std::uint8_t header_msg_id(std::uint8_t b) { return (b >> 4) & 0x0f; }
FragType header_type(std::uint8_t b) {
  return static_cast<FragType>((b >> 2) & 0x03);
}

}  // namespace

NrtEngine::NrtEngine(const NodeContext& ctx) : ctx_{ctx} {}

Expected<void, ChannelError> NrtEngine::announce(Subject subject, Etag etag,
                                                 const AttributeList& attrs,
                                                 ExceptionHandler on_exception) {
  if (publications_.contains(etag))
    return Unexpected{ChannelError::kAlreadyAnnounced};

  Publication pub;
  pub.subject = subject;
  pub.etag = etag;
  pub.on_exception = std::move(on_exception);
  if (const auto p = attrs.get<attr::FixedPriority>()) {
    // Only priorities within the predefined NRT range are accepted
    // (§2.2.3) — anything else could interfere with RT traffic.
    if (p->priority < kNrtPriorityMin)
      return Unexpected{ChannelError::kPriorityOutOfRange};
    pub.priority = p->priority;
  }
  pub.fragmented =
      attrs.get<attr::Fragmentation>().value_or(attr::Fragmentation{false}).enabled;
  publications_.emplace(etag, std::move(pub));
  return {};
}

Expected<void, ChannelError> NrtEngine::cancel_publication(Etag etag) {
  const auto it = publications_.find(etag);
  if (it == publications_.end())
    return Unexpected{ChannelError::kNotAnnounced};
  // Frames already staged in the controller finish; the backlog is dropped.
  publications_.erase(it);
  if (in_flight_ == etag) in_flight_.reset();
  return {};
}

Expected<void, ChannelError> NrtEngine::publish(Etag etag, Event event) {
  const auto it = publications_.find(etag);
  if (it == publications_.end())
    return Unexpected{ChannelError::kNotAnnounced};
  Publication& pub = it->second;

  if (!pub.fragmented && event.size() > 8)
    return Unexpected{ChannelError::kPayloadTooLarge};
  if (pub.fragmented && event.size() >= (1u << 24))
    return Unexpected{ChannelError::kPayloadTooLarge};

  ++counters_.published;
  if (!pub.fragmented) {
    CanFrame frame;
    frame.id = encode_can_id({pub.priority, ctx_.node, etag});
    frame.dlc = static_cast<std::uint8_t>(event.size());
    std::copy(event.content.begin(), event.content.end(), frame.data.begin());
    pub.backlog.push_back({frame, /*end_of_message=*/true});
  } else {
    fragment_into(pub, event);
  }
  pump();
  return {};
}

void NrtEngine::fragment_into(Publication& pub, const Event& event) {
  const std::uint8_t msg_id = pub.next_msg_id;
  pub.next_msg_id = (pub.next_msg_id + 1) & 0x0f;
  const std::uint32_t id = encode_can_id({pub.priority, ctx_.node, pub.etag});
  const auto& bytes = event.content;

  if (bytes.size() <= 7) {
    CanFrame f;
    f.id = id;
    f.data[0] = frag_header(msg_id, kSingle);
    std::copy(bytes.begin(), bytes.end(), f.data.begin() + 1);
    f.dlc = static_cast<std::uint8_t>(1 + bytes.size());
    pub.backlog.push_back({f, /*end_of_message=*/true});
    return;
  }

  // FIRST: header + LE24 total length + 4 payload bytes.
  std::size_t off = 0;
  {
    CanFrame f;
    f.id = id;
    f.data[0] = frag_header(msg_id, kFirst);
    f.data[1] = static_cast<std::uint8_t>(bytes.size() & 0xff);
    f.data[2] = static_cast<std::uint8_t>((bytes.size() >> 8) & 0xff);
    f.data[3] = static_cast<std::uint8_t>((bytes.size() >> 16) & 0xff);
    const std::size_t n = std::min<std::size_t>(4, bytes.size());
    std::copy_n(bytes.begin(), n, f.data.begin() + 4);
    f.dlc = static_cast<std::uint8_t>(4 + n);
    off = n;
    pub.backlog.push_back({f, /*end_of_message=*/false});
  }
  // MIDDLE/LAST: header + up to 7 payload bytes.
  while (off < bytes.size()) {
    CanFrame f;
    f.id = id;
    const std::size_t n = std::min<std::size_t>(7, bytes.size() - off);
    const bool last = off + n == bytes.size();
    f.data[0] = frag_header(msg_id, last ? kLast : kMiddle);
    std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(off), n,
                f.data.begin() + 1);
    f.dlc = static_cast<std::uint8_t>(1 + n);
    off += n;
    pub.backlog.push_back({f, last});
  }
}

std::size_t NrtEngine::backlog_frames() const {
  std::size_t n = in_flight_ ? 1 : 0;
  for (const auto& [etag, pub] : publications_) n += pub.backlog.size();
  return n;
}

void NrtEngine::pump() {
  if (in_flight_) return;

  // Serve the highest-priority channel first (lower value first), FIFO
  // within a channel — matching what the bus itself would do if all
  // backlogged frames could be staged at once.
  Publication* best = nullptr;
  for (auto& [etag, pub] : publications_) {
    if (pub.backlog.empty()) continue;
    if (best == nullptr || pub.priority < best->priority) best = &pub;
  }
  if (best == nullptr) return;

  const QueuedFrame queued = best->backlog.front();
  const Etag etag = best->etag;
  const bool end_of_message = queued.end_of_message;
  const auto result = ctx_.controller.submit(
      queued.frame, TxMode::kAutoRetransmit,
      [this, etag, end_of_message](CanController::MailboxId, const CanFrame&,
                                   bool success, TimePoint) {
        on_tx_result(etag, end_of_message, success);
      });
  if (!result) {
    // Bus-off / no mailbox: drop this channel's backlog and report.
    ++counters_.send_failed;
    if (best->on_exception)
      best->on_exception(
          {ChannelError::kBusOff, best->subject, ctx_.clock.now()});
    best->backlog.clear();
    return;
  }
  best->backlog.pop_front();
  in_flight_ = etag;
}

void NrtEngine::on_tx_result(Etag etag, bool end_of_message, bool success) {
  in_flight_.reset();
  const auto it = publications_.find(etag);
  if (it != publications_.end()) {
    if (success) {
      ++counters_.frames_sent;
      if (end_of_message) ++counters_.messages_sent;
    } else {
      ++counters_.send_failed;
      if (it->second.on_exception)
        it->second.on_exception(
            {ChannelError::kBusOff, it->second.subject, ctx_.clock.now()});
      it->second.backlog.clear();
    }
  }
  pump();
}

Expected<NrtEngine::Subscription*, ChannelError> NrtEngine::subscribe(
    Subject subject, Etag etag, const AttributeList& attrs,
    NotificationHandler notify, ExceptionHandler on_exception) {
  const std::size_t capacity =
      attrs.get<attr::QueueCapacity>().value_or(attr::QueueCapacity{}).events;
  auto sub = std::make_unique<Subscription>(subject, etag, capacity);
  sub->local_only = attrs.has<attr::LocalOnly>();
  sub->fragmented =
      attrs.get<attr::Fragmentation>().value_or(attr::Fragmentation{false}).enabled;
  sub->notify = std::move(notify);
  sub->on_exception = std::move(on_exception);
  subscriptions_.push_back(std::move(sub));
  return subscriptions_.back().get();
}

void NrtEngine::cancel_subscription(Subscription* sub) {
  if (sub != nullptr) sub->cancelled = true;
}

void NrtEngine::on_frame(const CanIdFields& fields, const CanFrame& frame,
                         TimePoint, bool remote_origin) {
  for (const auto& sub : subscriptions_) {
    if (sub->cancelled || sub->etag != fields.etag) continue;
    if (sub->local_only && remote_origin) continue;

    if (!sub->fragmented) {
      Event event;
      event.subject = sub->subject;
      event.content.assign(frame.data.begin(), frame.data.begin() + frame.dlc);
      event.attributes.timestamp = ctx_.clock.now();
      event.attributes.origin_network = remote_origin ? 0xff : 0;
      ++counters_.delivered;
      sub->deliver(std::move(event), ctx_.clock.now());
      continue;
    }

    // Fragmented channel: run the reassembly state machine for this sender.
    if (frame.dlc < 1) continue;
    auto& re = sub->reassembly[fields.tx_node];
    const std::uint8_t header = frame.data[0];
    const FragType type = header_type(header);
    const std::uint8_t msg_id = header_msg_id(header);

    auto fail = [&] {
      if (re.active) {
        re.active = false;
        re.buffer.clear();
        ++counters_.reassembly_failed;
        if (sub->on_exception)
          sub->on_exception({ChannelError::kReassemblyFailed, sub->subject,
                             ctx_.clock.now()});
      }
    };

    auto complete = [&] {
      Event event;
      event.subject = sub->subject;
      event.content = std::move(re.buffer);
      event.attributes.timestamp = ctx_.clock.now();
      event.attributes.origin_network = remote_origin ? 0xff : 0;
      re.buffer.clear();
      re.active = false;
      ++counters_.delivered;
      sub->deliver(std::move(event), ctx_.clock.now());
    };

    switch (type) {
      case kSingle: {
        fail();  // abandon any half-done message from this sender
        re.buffer.assign(frame.data.begin() + 1,
                         frame.data.begin() + frame.dlc);
        complete();
        break;
      }
      case kFirst: {
        fail();
        if (frame.dlc < 4) break;
        re.active = true;
        re.msg_id = msg_id;
        re.expected = static_cast<std::size_t>(frame.data[1]) |
                      (static_cast<std::size_t>(frame.data[2]) << 8) |
                      (static_cast<std::size_t>(frame.data[3]) << 16);
        re.buffer.assign(frame.data.begin() + 4,
                         frame.data.begin() + frame.dlc);
        break;
      }
      case kMiddle:
      case kLast: {
        if (!re.active || re.msg_id != msg_id) {
          // Joined mid-message or sender restarted: ignore silently unless
          // we were mid-reassembly (then it is an inconsistency).
          fail();
          break;
        }
        re.buffer.insert(re.buffer.end(), frame.data.begin() + 1,
                         frame.data.begin() + frame.dlc);
        if (re.buffer.size() > re.expected) {
          fail();
          break;
        }
        if (type == kLast) {
          if (re.buffer.size() == re.expected) {
            complete();
          } else {
            fail();
          }
        }
        break;
      }
    }
  }
}

}  // namespace rtec
