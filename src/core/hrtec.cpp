#include "core/hrtec.hpp"

namespace rtec {

Hrtec::~Hrtec() {
  if (announced_) (void)mw_.hrt().cancel_publication(*announced_);
  if (sub_ != nullptr) mw_.hrt().cancel_subscription(sub_);
}

Expected<void, ChannelError> Hrtec::announce(Subject subject,
                                             const AttributeList& attrs,
                                             ExceptionHandler exception_handler) {
  if (announced_) return Unexpected{ChannelError::kAlreadyAnnounced};
  const auto etag = mw_.bind(subject);
  if (!etag) return Unexpected{etag.error()};
  const auto r =
      mw_.hrt().announce(subject, *etag, attrs, std::move(exception_handler));
  if (!r) return r;
  subject_ = subject;
  announced_ = *etag;
  return {};
}

Expected<void, ChannelError> Hrtec::cancelPublication() {
  if (!announced_) return Unexpected{ChannelError::kNotAnnounced};
  const auto r = mw_.hrt().cancel_publication(*announced_);
  announced_.reset();
  return r;
}

Expected<void, ChannelError> Hrtec::publish(Event event) {
  if (!announced_) return Unexpected{ChannelError::kNotAnnounced};
  event.subject = *subject_;
  return mw_.hrt().publish(*announced_, std::move(event));
}

Expected<void, ChannelError> Hrtec::subscribe(Subject subject,
                                              const AttributeList& attrs,
                                              NotificationHandler not_handler,
                                              ExceptionHandler exception_handler) {
  if (sub_ != nullptr) return Unexpected{ChannelError::kAlreadySubscribed};
  const auto etag = mw_.bind(subject);
  if (!etag) return Unexpected{etag.error()};
  auto r = mw_.hrt().subscribe(subject, *etag, attrs, std::move(not_handler),
                               std::move(exception_handler));
  if (!r) return Unexpected{r.error()};
  mw_.add_subscription_filter(*etag);  // hardware routing for this subject
  subject_ = subject;
  sub_ = *r;
  return {};
}

Expected<void, ChannelError> Hrtec::cancelSubscription() {
  if (sub_ == nullptr) return Unexpected{ChannelError::kNotSubscribed};
  mw_.hrt().cancel_subscription(sub_);
  sub_ = nullptr;
  return {};
}

std::optional<Event> Hrtec::getEvent() {
  if (sub_ == nullptr) return std::nullopt;
  return sub_->queue.pop();
}

Expected<Duration, ChannelError> Hrtec::guaranteed_latency() const {
  if (!subject_) return Unexpected{ChannelError::kNotAnnounced};
  const Calendar* calendar = mw_.context().calendar;
  if (calendar == nullptr) return Unexpected{ChannelError::kNoReservation};
  const auto etag = mw_.binding().lookup(*subject_);
  if (!etag) return Unexpected{ChannelError::kNoReservation};

  Duration worst = Duration::zero();
  bool found = false;
  for (std::size_t i = 0; i < calendar->size(); ++i) {
    if (calendar->slot(i).etag != *etag) continue;
    const SlotTiming t = calendar->timing(i);
    worst = std::max(worst, t.deadline_offset - t.ready_offset);
    found = true;
  }
  if (!found) return Unexpected{ChannelError::kNoReservation};
  return worst;
}

}  // namespace rtec
