#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "canbus/can_types.hpp"
#include "sched/id_codec.hpp"
#include "sched/wctt.hpp"
#include "util/time_types.hpp"

/// \file attributes.hpp
/// The attribute lists of the paper's API (Figs 1 and 2). Channel
/// attributes "abstract the properties of the underlying communication
/// network and dissemination scheme" (periodicity, reliability, data
/// rates, fragmentation, filtering scope); event attributes describe one
/// occurrence (deadline, expiration, context). The paper leaves the list
/// untyped; here each attribute is a small struct and the list is a
/// type-checked variant container, so a misconfigured channel fails at
/// announce() rather than at runtime.

namespace rtec {
namespace attr {

/// HRT: the channel publishes periodically with this period. The calendar
/// must contain slots matching the period (the admission layer checks the
/// reservation exists; see Middleware::announce_hrt).
struct Periodic {
  Duration period;
};

/// HRT: sporadic publications with a minimum inter-arrival time; reserved
/// slots may legitimately go unused (and are reclaimed by lower classes).
struct Sporadic {
  Duration min_interarrival;
};

/// Reserved message size in data bytes (0..8 for RT channels).
struct MessageSize {
  int dlc = 8;
};

/// HRT reliability: number of omission faults the channel must mask by
/// time redundancy (slot is sized for omission_degree + 1 attempts).
struct Reliability {
  int omission_degree = 0;
};

/// HRT ablation knob: transmit every redundant copy even after a
/// successful attempt — the TTCAN-style "fill the reserved slot"
/// behaviour the paper argues against (§3.2). Default (absent) is the
/// paper's scheme: suppress remaining copies on confirmed success and let
/// the bus reclaim the slot remainder. Exists so experiments can measure
/// exactly what the suppression buys (E4).
struct AlwaysTransmitCopies {};

/// SRT: default relative transmission deadline applied to events that do
/// not carry their own.
struct Deadline {
  Duration relative;
};

/// SRT: default relative expiration (validity interval). An event not
/// transmitted by deadline+... is dropped when its expiration passes.
struct Expiration {
  Duration relative;
};

/// Subscriber-side filter: only deliver events originating on the local
/// network segment (paper §2.2.1's multi-network filtering example).
struct LocalOnly {};

/// NRT: fixed priority; must lie within the NRT band [251, 255] — the
/// middleware rejects anything that could interfere with RT traffic.
struct FixedPriority {
  Priority priority = kNrtPriorityMax;
};

/// NRT: the channel carries bulk payloads chained from 8-byte fragments
/// ("fragmentation is defined during the announcement of the event channel
/// as an entry in the attribute_list", §2.2.3).
struct Fragmentation {
  bool enabled = true;
};

/// Capacity of the subscriber-side event queue (the "predefined memory
/// area" of §2.2.1) in events.
struct QueueCapacity {
  std::size_t events = 16;
};

}  // namespace attr

using Attribute =
    std::variant<attr::Periodic, attr::Sporadic, attr::MessageSize,
                 attr::Reliability, attr::AlwaysTransmitCopies, attr::Deadline,
                 attr::Expiration, attr::LocalOnly, attr::FixedPriority,
                 attr::Fragmentation, attr::QueueCapacity>;

/// Ordered attribute list with typed lookup.
class AttributeList {
 public:
  AttributeList() = default;
  AttributeList(std::initializer_list<Attribute> attrs) : attrs_{attrs} {}

  AttributeList& add(Attribute a) {
    attrs_.push_back(std::move(a));
    return *this;
  }

  /// First attribute of type A, if present.
  template <typename A>
  [[nodiscard]] std::optional<A> get() const {
    for (const Attribute& a : attrs_)
      if (const A* p = std::get_if<A>(&a)) return *p;
    return std::nullopt;
  }

  template <typename A>
  [[nodiscard]] bool has() const {
    return get<A>().has_value();
  }

  [[nodiscard]] std::size_t size() const { return attrs_.size(); }

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace rtec
