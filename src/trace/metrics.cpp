#include "trace/metrics.hpp"

namespace rtec {

ClassUtilization::ClassUtilization(CanBus& bus) : bus_{bus} {
  window_start_ = bus.simulator().now();
  bus.add_observer([this](const CanBus::FrameEvent& ev) {
    const auto c = static_cast<std::size_t>(classify_priority(id_priority(ev.frame.id)));
    busy_[c] += ev.end - ev.start;
    ++frames_[c];
    if (!ev.success) ++errors_[c];
  });
}

double ClassUtilization::fraction(TrafficClass c) const {
  const Duration elapsed = bus_.simulator().now() - window_start_;
  if (elapsed <= Duration::zero()) return 0.0;
  return static_cast<double>(busy_[static_cast<std::size_t>(c)].ns()) /
         static_cast<double>(elapsed.ns());
}

void ClassUtilization::reset() {
  window_start_ = bus_.simulator().now();
  busy_.fill(Duration::zero());
  frames_.fill(0);
  errors_.fill(0);
}

void PeriodProbe::record_delivery(TimePoint t) {
  if (has_prev_) periods_.add(static_cast<double>((t - prev_).ns()));
  prev_ = t;
  has_prev_ = true;
}

}  // namespace rtec
