#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "canbus/bus.hpp"
#include "sim/shard_engine.hpp"
#include "sim/simulator.hpp"
#include "trace/binary.hpp"
#include "trace/detectors.hpp"
#include "trace/histogram.hpp"
#include "trace/metrics.hpp"
#include "trace/stream.hpp"
#include "util/profile.hpp"

/// \file registry.hpp
/// Unified metrics registry: one flat, deterministic snapshot of every
/// engine counter the repo exposes.
///
/// Before this layer each component reported through its own accessors
/// (CanBus::frames_ok, ShardEngine::stats, detector counters, bench-local
/// probes) and every bench/test stitched its own subset together. The
/// registry is the common sink: components *export into* it under a
/// dotted-name prefix ("net0.bus.frames_ok", "engine.epochs", ...) and
/// the whole snapshot serializes to canonical JSON — keys sorted (std::map
/// iteration order), integers exact, doubles printed with %.17g. Every
/// metric derived from the simulation timeline is bit-identical across
/// runs and shard/thread counts; the only documented exceptions are the
/// engine's barrier spin/park counters, which measure host scheduling
/// (see ShardEngine::Stats). CI archives snapshots as diffable artifacts.
///
/// The catalog of exported names is documented in docs/observability.md;
/// Scenario::export_metrics assembles the full per-scenario snapshot and
/// benches write it alongside their BENCH_*.json.

namespace rtec {
namespace trace {

/// Flat name -> value store. Values are exact integers or doubles;
/// booleans are exported as 0/1 counters.
class MetricsRegistry {
 public:
  using Value = std::variant<std::uint64_t, std::int64_t, double>;

  void set(const std::string& name, std::uint64_t v) { values_[name] = v; }
  void set(const std::string& name, std::int64_t v) { values_[name] = v; }
  void set(const std::string& name, double v) { values_[name] = v; }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] std::optional<Value> get(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  /// Any stored value, widened to double (tests and quick checks).
  [[nodiscard]] std::optional<double> get_double(
      const std::string& name) const;

  /// Canonical JSON object: keys sorted, one "name": value per line.
  /// Deterministic across runs and platforms for identical contents.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`. Returns false on I/O failure.
  bool save(const std::string& path) const;

  /// Ordered (sorted by name) read access.
  [[nodiscard]] const std::map<std::string, Value>& values() const {
    return values_;
  }

 private:
  // determinism: ordered map keeps snapshots byte-identical
  std::map<std::string, Value> values_;
};

/// Component exporters. Each writes its counters under `<prefix>.`; the
/// prefix carries the instance identity (e.g. "net3.bus"). See
/// docs/observability.md for the full metric catalog.
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const Simulator::Stats& kernel);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const ShardEngine& engine);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const CanBus& bus);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const ClassUtilization& util);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const LatencyProbe& probe);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const Histogram& hist);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const SpanProfiler& prof);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const StreamTap& tap);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const Detector& det);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const DetectorBank& bank);
void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const RtebWriter& writer);

}  // namespace trace
}  // namespace rtec
