#pragma once

#include <string>
#include <vector>

#include "canbus/bus.hpp"

/// \file bus_recorder.hpp
/// Raw frame-event recorder: keeps every bus occupancy (including
/// corrupted attempts and attempt numbers, which the candump format
/// cannot represent) and dumps them as CSV for offline analysis. The
/// de-facto debugging tool when a timing assertion fails: diff two
/// recordings of "identical" runs to find the first divergence.

namespace rtec {

class BusRecorder {
 public:
  explicit BusRecorder(CanBus& bus);

  [[nodiscard]] const std::vector<CanBus::FrameEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Events whose identifier matches (id & mask) == (match & mask).
  [[nodiscard]] std::vector<CanBus::FrameEvent> filtered(
      std::uint32_t match, std::uint32_t mask) const;

  /// First index at which two recordings diverge (id, start, success), or
  /// the shorter length when one is a prefix of the other; equal-length
  /// identical traces return their common size.
  [[nodiscard]] static std::size_t first_divergence(const BusRecorder& a,
                                                    const BusRecorder& b);

  /// CSV: start_ns,end_ns,id_hex,prio,node,etag,dlc,success,attempt,bits
  bool save_csv(const std::string& path) const;

  void clear() { events_.clear(); }

 private:
  std::vector<CanBus::FrameEvent> events_;
};

}  // namespace rtec
