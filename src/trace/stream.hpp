#pragma once

#include <cstdint>
#include <vector>

#include "canbus/bus.hpp"
#include "util/time_types.hpp"

/// \file stream.hpp
/// Streaming (online) trace consumers.
///
/// The existing trace tools (BusRecorder, CandumpRecorder, csv.hpp) buffer
/// every event and analyze after the run — fine for debugging, wrong for
/// anything that must run *inside* the system: an intrusion detector on a
/// real CAN node sees one frame at a time and keeps bounded state. This
/// header is the per-delivery push interface those consumers implement;
/// trace/detectors.hpp provides the anomaly detectors built on it.
///
/// Contract for observers:
///  * on_frame() is called once per successful delivery, at end-of-frame
///    simulated time, in bus order (the tap filters corrupted attempts).
///  * finish() is called once when the run ends so time-windowed state can
///    flush; afterwards the observer is only read, never fed.
///  * Observers keep bounded state and never buffer the stream.
///  * Determinism: observers may derive decisions only from the event
///    stream itself (frame contents + simulated timestamps) so a scenario
///    with detectors stays bit-identical across shard/thread counts.

namespace rtec {
namespace trace {

/// One online consumer of delivered frames.
class StreamObserver {
 public:
  virtual ~StreamObserver() = default;

  StreamObserver() = default;
  StreamObserver(const StreamObserver&) = delete;
  StreamObserver& operator=(const StreamObserver&) = delete;

  /// One successful delivery (ev.success is always true here).
  virtual void on_frame(const CanBus::FrameEvent& ev) = 0;

  /// End of run at simulated time `now`; flush window state. Default: no-op.
  virtual void finish(TimePoint now) { (void)now; }
};

/// Feeds every successful bus delivery to a set of observers, in
/// registration order, with no buffering. Observers are not owned and must
/// outlive the tap (Scenario owns both when wired through it).
class StreamTap {
 public:
  explicit StreamTap(CanBus& bus) {
    bus.add_observer([this](const CanBus::FrameEvent& ev) {
      if (!ev.success) return;
      ++deliveries_;
      for (StreamObserver* o : observers_) o->on_frame(ev);
    });
  }

  StreamTap(const StreamTap&) = delete;
  StreamTap& operator=(const StreamTap&) = delete;

  void add(StreamObserver* obs) { observers_.push_back(obs); }

  /// Forwards end-of-run to every observer.
  void finish(TimePoint now) {
    for (StreamObserver* o : observers_) o->finish(now);
  }

  /// Successful deliveries seen (corrupted attempts are filtered out).
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

 private:
  std::vector<StreamObserver*> observers_;
  std::uint64_t deliveries_ = 0;
};

}  // namespace trace
}  // namespace rtec
