#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "canbus/bus.hpp"
#include "trace/candump.hpp"
#include "util/expected.hpp"
#include "util/time_types.hpp"

/// \file binary.hpp
/// RTEB — the Real-Time Event channel Binary trace format.
///
/// The text recorders (CandumpRecorder, BusRecorder CSV) buffer every
/// event as a formatted line: fine for debugging, wrong for high-rate
/// online capture where a city-scale run emits millions of frame events
/// and the trace must be written *while* the simulation runs. RTEB is the
/// compact binary alternative: a versioned, little-endian, length-prefixed
/// record stream covering everything the observability layer sees —
/// frame deliveries (including corrupted attempts and attack collisions,
/// which candump cannot represent), detector alarms, and gateway
/// handoffs — written through a bounded buffer that flushes to the sink
/// incrementally instead of accumulating the run.
///
/// Compactness comes from stateful delta coding (all state is replayed
/// deterministically by the reader, nothing is sampled or dropped):
///  * identifiers are interned into a first-seen-order table and encoded
///    as a varint table reference after first sight;
///  * per-identifier frame metadata (sender, format flags, dlc, wire
///    bits, attempt) and payload are cached and re-emitted only when they
///    change — periodic CAN streams repeat them almost always;
///  * record times are coded as a zigzag varint residual against the
///    per-identifier prediction `last time + last period`, which is a
///    1-byte `0` for jitter-free periodic traffic.
/// A steady periodic delivery costs 4 bytes (length, kind/flags, id ref,
/// time residual) against ~43 bytes for its candump text line — the
/// >= 10x size reduction tests/test_rteb.cpp pins on periodic traffic.
///
/// Determinism: the byte stream is a pure function of the record sequence
/// fed to the writer. Each RtebRecorder captures exactly one network
/// segment's events in that segment's deterministic execution order, so
/// RTEB files are byte-identical across shard and thread counts (gated at
/// 64 segments x shards {1,2} x threads {1,2,4} in tests/test_multiseg.cpp).
///
/// Wire layout (all integers little-endian; varint = LEB128, zigzag for
/// signed values):
///
///   header   : magic "RTEB" | u16 version (=1) | u16 network | u32 zero
///   record   : u8 length (bytes after this one) | u8 kindflags | payload
///   kindflags: bits 5..7 = kind, bits 0..4 = kind-specific flags
///
/// Record kinds and payloads are documented per encoder below and in
/// docs/observability.md (the normative spec). Truncated files, bad
/// magic/version and unknown kinds are hard reader errors — never a
/// silently shortened trace.

namespace rtec {
namespace trace {

inline constexpr std::array<std::uint8_t, 4> kRtebMagic{0x52, 0x54, 0x45,
                                                        0x42};  // "RTEB"
inline constexpr std::uint16_t kRtebVersion = 1;
inline constexpr std::size_t kRtebHeaderSize = 12;

/// Record kinds (kindflags bits 5..7).
enum class RtebKind : std::uint8_t {
  kFrame = 1,        ///< one bus occupancy (delivery, error, or collision)
  kAlarm = 2,        ///< one detector alarm
  kHandoff = 3,      ///< one gateway handoff commit
  kDetectorDef = 4,  ///< interns a detector name for kAlarm references
};

/// One decoded frame record — the FrameEvent fields RTEB preserves
/// (`start` is not stored; the bus occupancy is `wire_bits` bit times
/// ending at `at`).
struct RtebFrame {
  TimePoint at;  ///< end-of-frame / error-delimiter time
  CanFrame frame;
  NodeId sender = 0;
  bool success = false;
  bool collision = false;
  int wire_bits = 0;
  int attempt = 0;
};

/// One decoded detector alarm.
struct RtebAlarm {
  TimePoint at;
  std::string detector;
  std::uint32_t id = 0;
  double score = 0.0;
  bool unknown_id = false;
};

/// One decoded gateway handoff commit.
struct RtebHandoff {
  TimePoint send;     ///< source-segment commit time
  TimePoint release;  ///< destination-segment injection stamp
  std::uint32_t channel = 0;
  std::uint64_t seq = 0;
};

/// One decoded record (exactly one member is meaningful for `kind`;
/// kDetectorDef records are consumed internally by the reader and never
/// surfaced).
struct RtebRecord {
  RtebKind kind = RtebKind::kFrame;
  RtebFrame frame;
  RtebAlarm alarm;
  RtebHandoff handoff;
};

/// Serializes records into the RTEB byte stream. Memory-backed by default
/// (bytes() holds the whole stream — tests, byte-identity diffs); with a
/// path the writer streams through a bounded buffer flushed to the file
/// whenever it exceeds ~64 KiB, so capture memory stays O(1) in the run
/// length.
class RtebWriter {
 public:
  /// Memory-backed writer.
  explicit RtebWriter(std::uint16_t network = 0);
  /// File-backed writer with bounded buffering; io_ok() reports failures.
  RtebWriter(const std::string& path, std::uint16_t network);
  ~RtebWriter();

  RtebWriter(const RtebWriter&) = delete;
  RtebWriter& operator=(const RtebWriter&) = delete;

  void add_frame(const CanBus::FrameEvent& ev);
  void add_alarm(const char* detector, TimePoint at, std::uint32_t id,
                 double score, bool unknown_id);
  void add_handoff(TimePoint send, TimePoint release, std::uint32_t channel,
                   std::uint64_t seq);

  /// Flushes buffered bytes to the file sink (no-op when memory-backed).
  /// Returns io_ok(). Idempotent; the destructor calls it too.
  bool finish();

  /// False after any file write failure (memory-backed: always true).
  [[nodiscard]] bool io_ok() const { return io_ok_; }
  /// The full stream (memory-backed writers only; asserted).
  [[nodiscard]] const std::string& bytes() const;
  /// Bytes emitted so far, header included.
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  /// Records emitted so far (kDetectorDef bookkeeping records included).
  [[nodiscard]] std::uint64_t records() const { return records_; }

 private:
  struct IdState {
    std::uint32_t id = 0;
    std::uint32_t order = 0;  ///< first-seen index, the on-wire reference
    std::int64_t last_t_ns = 0;
    std::int64_t last_delta_ns = 0;
    NodeId sender = 0;
    std::uint8_t meta_flags = 0;  ///< bit0 extended, bit1 rtr
    std::uint8_t dlc = 0;
    int wire_bits = 0;
    int attempt = 0;
    std::array<std::uint8_t, 8> payload{};
  };
  struct ChannelState {
    std::uint32_t channel = 0;
    std::int64_t latency_ns = -1;
    std::uint64_t next_seq = 0;
  };

  void write_header(std::uint16_t network);
  void emit_record(const std::string& payload);
  void sink(const char* data, std::size_t n);
  IdState* find_id(std::uint32_t id);
  ChannelState& find_channel(std::uint32_t channel);

  std::string buf_;          ///< memory stream, or the bounded file buffer
  std::FILE* file_ = nullptr;
  bool io_ok_ = true;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t records_ = 0;
  std::int64_t prev_record_t_ns_ = 0;
  std::vector<IdState> ids_;            ///< sorted by id
  std::vector<ChannelState> channels_;  ///< sorted by channel
  std::vector<std::string> detectors_;  ///< interned names, index order
};

/// Decodes an RTEB byte stream. The reader replays the writer's state
/// machine, so decoding is sequential; every structural defect (bad
/// magic, unsupported version, truncated record, unknown kind, dangling
/// reference) is a hard error naming the byte offset.
class RtebReader {
 public:
  /// Validates the header. The data must outlive the reader.
  [[nodiscard]] static Expected<RtebReader, std::string> open(
      std::string_view data);

  [[nodiscard]] std::uint16_t version() const { return version_; }
  [[nodiscard]] std::uint16_t network() const { return network_; }

  /// Next record; std::nullopt at clean end-of-stream, error on damage.
  [[nodiscard]] Expected<std::optional<RtebRecord>, std::string> next();

  /// Decodes the remaining records in one pass.
  [[nodiscard]] Expected<std::vector<RtebRecord>, std::string> read_all();

 private:
  struct IdState {
    std::uint32_t id = 0;
    std::int64_t last_t_ns = 0;
    std::int64_t last_delta_ns = 0;
    RtebFrame last;  ///< cached meta + payload
  };
  struct ChannelState {
    std::uint32_t channel = 0;
    std::int64_t latency_ns = -1;
    std::uint64_t next_seq = 0;
  };

  RtebReader(std::string_view data, std::uint16_t version,
             std::uint16_t network)
      : data_{data}, pos_{kRtebHeaderSize}, version_{version},
        network_{network} {}

  [[nodiscard]] std::string at_offset(const char* what) const;

  std::string_view data_;
  std::size_t pos_ = 0;
  std::uint16_t version_ = 0;
  std::uint16_t network_ = 0;
  std::int64_t prev_record_t_ns_ = 0;
  std::vector<IdState> ids_;  ///< first-seen order, indexed by reference
  std::vector<ChannelState> channels_;  ///< sorted by channel
  std::vector<std::string> detectors_;  ///< interned names, index order
};

/// Renders the successful frame records of an RTEB stream as candump
/// text (one log line per delivery — corrupted attempts, alarms and
/// handoffs have no candump representation and are omitted, exactly as a
/// real candump never sees them).
[[nodiscard]] Expected<std::string, std::string> rteb_to_candump(
    std::string_view rteb, const std::string& interface_name);

/// Encodes a candump log as an RTEB stream of successful deliveries
/// (sender/wire_bits/attempt are not in the text format and encode as 0;
/// attempt as 1). The conversion is lossless in the candump->RTEB->candump
/// direction: every field the text format carries round-trips exactly.
/// `skipped_lines` (optional) receives the malformed-line count from
/// parse_candump.
[[nodiscard]] std::string rteb_from_candump(
    const std::string& text, std::uint16_t network,
    std::size_t* skipped_lines = nullptr);

/// Streams every bus occupancy of one network segment (successful,
/// corrupted and collided attempts alike) into an RtebWriter, in the
/// segment's deterministic event order. Gateway handoffs and detector
/// alarms are appended through writer() by the scenario wiring
/// (Scenario::record_rteb) or manually.
class RtebRecorder {
 public:
  /// Memory-backed capture.
  RtebRecorder(CanBus& bus, std::uint16_t network);
  /// File-backed capture with bounded buffering.
  RtebRecorder(CanBus& bus, std::uint16_t network, const std::string& path);

  RtebRecorder(const RtebRecorder&) = delete;
  RtebRecorder& operator=(const RtebRecorder&) = delete;

  [[nodiscard]] RtebWriter& writer() { return writer_; }
  [[nodiscard]] const RtebWriter& writer() const { return writer_; }
  /// Memory-backed captures: the stream so far (see RtebWriter::bytes).
  [[nodiscard]] const std::string& bytes() const { return writer_.bytes(); }
  /// Flushes the file sink; returns io_ok().
  bool finish() { return writer_.finish(); }

 private:
  RtebWriter writer_;
};

}  // namespace trace
}  // namespace rtec
