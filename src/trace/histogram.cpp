#include "trace/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "util/stats.hpp"

namespace rtec {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_{lo}, width_{(hi - lo) / static_cast<double>(buckets)},
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const std::size_t rank = quantile_rank(total_, q);
  if (rank < underflow_) return lo_;
  std::size_t cum = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (rank < cum) return bucket_lo(i);
  }
  return lo_ + width_ * static_cast<double>(counts_.size());  // overflow bin
}

std::string Histogram::render(double unit_scale, const char* unit,
                              std::size_t max_bar) const {
  std::size_t peak = std::max<std::size_t>(1, underflow_);
  for (std::size_t c : counts_) peak = std::max(peak, c);
  peak = std::max(peak, overflow_);

  std::string out;
  char line[160];
  const auto row = [&](const char* label, std::size_t n) {
    const std::size_t bar = n * max_bar / peak;
    std::snprintf(line, sizeof line, "  %-22s %8zu |%s\n", label, n,
                  std::string(bar, '#').c_str());
    out += line;
  };
  if (underflow_ > 0) row("< range", underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    char label[48];
    std::snprintf(label, sizeof label, "[%.1f..%.1f)%s",
                  bucket_lo(i) / unit_scale,
                  (bucket_lo(i) + width_) / unit_scale, unit);
    row(label, counts_[i]);
  }
  if (overflow_ > 0) row(">= range", overflow_);
  return out;
}

}  // namespace rtec
