#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "trace/stream.hpp"
#include "util/stats.hpp"
#include "util/time_types.hpp"

/// \file detectors.hpp
/// Streaming timing-based anomaly detectors for CAN traffic — the defender
/// side of the robustness layer (the attacker side is canbus/attack.hpp).
///
/// All three detectors follow the evaluation methodology of the CAN IDS
/// benchmarking study (Pollicino/Stabili/Marchetti, arXiv 2307.04561):
/// message *timing* is the only feature, because periodic CAN streams make
/// inter-arrival time (IAT) a strong invariant and payload inspection
/// requires per-vehicle DBC knowledge. Each detector has an explicit
/// training phase [start of run, train_until) in which it learns per-ID
/// statistics from attack-free traffic, then switches to detection:
///
///  * MeanIatGate    — per-ID mean/σ gate: alarm when an IAT deviates from
///                     the trained mean by more than k·σ.
///  * CusumDetector  — two-sided CUSUM over standardized IATs: integrates
///                     small persistent shifts a per-frame gate misses.
///  * WindowFrequencyDetector — per-ID frame counts over tumbling windows
///                     checked against the trained [min, max] band; the
///                     only one of the three that can flag the *absence*
///                     of traffic (message suspension) promptly.
///
/// Common rules:
///  * Bounded state: at most `max_tracked_ids` identifiers are learned
///    (admission closes when training ends); per-ID state is O(1). IDs
///    that arrive in detection without a trained profile raise an
///    `unknown-id` alarm (this is what catches fuzzing) and are counted,
///    never stored.
///  * Determinism: per-ID state lives in an id-sorted vector (no hash
///    containers), decisions depend only on the event stream, and there is
///    no randomness — detector output is part of the byte-identical trace
///    contract.
///  * Online aggregation only: Welford moments and counters; the stream is
///    never buffered.

namespace rtec {
namespace trace {

/// One detection event. `score` is the detector-specific anomaly
/// magnitude (gate: |z|; CUSUM: the decision statistic; window: band
/// distance in frames; unknown-id alarms: 0).
struct Alarm {
  const char* detector = nullptr;
  std::uint32_t id = 0;  ///< offending CAN identifier
  TimePoint at;          ///< simulated time the alarm fired
  double score = 0.0;
  bool unknown_id = false;  ///< identifier had no trained profile
};

using AlarmSink = std::function<void(const Alarm&)>;

/// Base class: training window, alarm accounting, alarm sink.
class Detector : public StreamObserver {
 public:
  explicit Detector(TimePoint train_until) : train_until_{train_until} {}

  [[nodiscard]] virtual const char* name() const = 0;

  /// Receives every alarm as it fires (on top of the built-in counters).
  void set_alarm_sink(AlarmSink sink) { sink_ = std::move(sink); }

  [[nodiscard]] TimePoint train_until() const { return train_until_; }
  [[nodiscard]] std::uint64_t alarm_count() const { return alarms_; }
  [[nodiscard]] std::optional<TimePoint> first_alarm() const {
    return first_alarm_;
  }
  /// Detection-phase arrivals whose identifier had no trained profile.
  [[nodiscard]] std::uint64_t unknown_id_frames() const { return unknown_; }

 protected:
  [[nodiscard]] bool in_training(TimePoint t) const {
    return t < train_until_;
  }

  void raise(std::uint32_t id, TimePoint at, double score,
             bool unknown_id = false) {
    ++alarms_;
    if (unknown_id) ++unknown_;
    if (!first_alarm_) first_alarm_ = at;
    if (sink_) sink_(Alarm{name(), id, at, score, unknown_id});
  }

 private:
  TimePoint train_until_;
  AlarmSink sink_;
  std::uint64_t alarms_ = 0;
  std::uint64_t unknown_ = 0;
  std::optional<TimePoint> first_alarm_;
};

/// Effective σ used to standardize IATs: perfectly periodic training
/// traffic has σ = 0, which would make any deviation infinitely anomalous,
/// so σ is floored at `rel_floor` times the trained mean.
[[nodiscard]] double effective_sigma(double mean, double stddev,
                                     double rel_floor);

/// Per-frame mean/σ gate on inter-arrival times.
class MeanIatGate final : public Detector {
 public:
  struct Config {
    TimePoint train_until;
    double k = 4.0;          ///< alarm when |dt - mean| > k * σ_eff
    double rel_floor = 0.05; ///< σ floor as a fraction of the mean
    std::size_t min_train_samples = 8;  ///< fewer ⇒ ID counts as unknown
    std::size_t max_tracked_ids = 256;
  };

  explicit MeanIatGate(Config cfg) : Detector{cfg.train_until}, cfg_{cfg} {}

  [[nodiscard]] const char* name() const override { return "iat_gate"; }
  void on_frame(const CanBus::FrameEvent& ev) override;

  [[nodiscard]] std::size_t tracked_ids() const { return ids_.size(); }

 private:
  struct Entry {
    std::uint32_t id = 0;
    bool has_last = false;
    TimePoint last;
    OnlineStats train;  ///< IAT moments accumulated during training
  };

  Entry* find_or_admit(std::uint32_t id, TimePoint t);

  Config cfg_;
  std::vector<Entry> ids_;  ///< sorted by id; bounded by max_tracked_ids
};

/// Two-sided CUSUM on standardized IATs, per identifier. Each arrival
/// contributes z = (dt - mean)/σ_eff; the decision statistics accumulate
/// S⁺ = max(0, S⁺ + z - drift) and S⁻ = max(0, S⁻ - z - drift) and alarm
/// (then reset the tripped side) when either exceeds `threshold`. Catches
/// sustained small rate shifts that stay inside a per-frame gate.
class CusumDetector final : public Detector {
 public:
  struct Config {
    TimePoint train_until;
    double drift = 0.5;      ///< slack per sample, in σ units
    double threshold = 8.0;  ///< alarm level for S⁺ / S⁻
    double rel_floor = 0.05;
    std::size_t min_train_samples = 8;
    std::size_t max_tracked_ids = 256;
  };

  explicit CusumDetector(Config cfg) : Detector{cfg.train_until}, cfg_{cfg} {}

  [[nodiscard]] const char* name() const override { return "cusum"; }
  void on_frame(const CanBus::FrameEvent& ev) override;

  [[nodiscard]] std::size_t tracked_ids() const { return ids_.size(); }

 private:
  struct Entry {
    std::uint32_t id = 0;
    bool has_last = false;
    TimePoint last;
    OnlineStats train;
    double s_pos = 0.0;
    double s_neg = 0.0;
  };

  Entry* find_or_admit(std::uint32_t id, TimePoint t);

  Config cfg_;
  std::vector<Entry> ids_;
};

/// Per-ID frame counts over tumbling windows, checked against the trained
/// per-ID [min, max] count band (± margin). Windows are aligned to the
/// time origin and advance with the event stream; finish() closes the
/// trailing windows. A window with zero frames from a trained ID is a
/// first-class observation — this is the detector that flags message
/// suspension within one window length.
class WindowFrequencyDetector final : public Detector {
 public:
  struct Config {
    TimePoint train_until;
    Duration window = Duration::milliseconds(100);
    /// Allowed slack in frames on both sides of the trained band.
    std::int64_t margin = 1;
    /// Trained windows required before an ID's band is enforced.
    std::uint64_t min_train_windows = 4;
    std::size_t max_tracked_ids = 256;
  };

  explicit WindowFrequencyDetector(Config cfg);

  [[nodiscard]] const char* name() const override { return "win_freq"; }
  void on_frame(const CanBus::FrameEvent& ev) override;
  void finish(TimePoint now) override;

  [[nodiscard]] std::size_t tracked_ids() const { return ids_.size(); }

 private:
  struct Entry {
    std::uint32_t id = 0;
    std::uint64_t first_window = 0;  ///< windows before first sight ignored
    std::uint64_t train_windows = 0;
    std::int64_t min_count = 0;
    std::int64_t max_count = 0;
    std::int64_t count = 0;  ///< frames in the currently open window
  };

  /// Closes every window that ends at or before `t`.
  void close_windows_before(TimePoint t);
  void close_one_window();

  Config cfg_;
  std::vector<Entry> ids_;
  std::uint64_t open_window_ = 0;  ///< index of the currently open window
};

/// Owns a set of detectors and fans the stream into all of them; the unit
/// Scenario installs per network. Also a StreamObserver, so a bank nests
/// under a StreamTap as one subscriber.
class DetectorBank final : public StreamObserver {
 public:
  Detector& add(std::unique_ptr<Detector> d) {
    detectors_.push_back(std::move(d));
    return *detectors_.back();
  }

  void on_frame(const CanBus::FrameEvent& ev) override {
    for (const auto& d : detectors_) d->on_frame(ev);
  }
  void finish(TimePoint now) override {
    for (const auto& d : detectors_) d->finish(now);
  }

  [[nodiscard]] std::size_t size() const { return detectors_.size(); }
  [[nodiscard]] Detector& at(std::size_t i) { return *detectors_[i]; }
  [[nodiscard]] const Detector& at(std::size_t i) const {
    return *detectors_[i];
  }

 private:
  std::vector<std::unique_ptr<Detector>> detectors_;
};

}  // namespace trace
}  // namespace rtec
