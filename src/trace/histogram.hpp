#pragma once

#include <string>
#include <vector>

#include "util/time_types.hpp"

/// \file histogram.hpp
/// Fixed-bucket histogram with console rendering — benches use it to show
/// latency distributions inline (the "shape" EXPERIMENTS.md talks about)
/// without leaving the terminal.

namespace rtec {

class Histogram {
 public:
  /// Buckets of equal width spanning [lo, hi); samples outside are counted
  /// in the under/overflow bins.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  void add(Duration d) { add(static_cast<double>(d.ns())); }

  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;

  /// Nearest-rank q-quantile (util/stats quantile_rank — the same rank
  /// convention as SampleSet), resolved to the LOWER EDGE of the bucket
  /// holding the ranked sample: exact whenever samples sit on the bucket
  /// grid (bench_analytic aligns buckets to the bus bit time for this),
  /// otherwise quantised down by at most one bucket width. Ranked samples
  /// in the underflow bin report lo, in the overflow bin hi; 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering: one row per non-empty bucket,
  /// "[lo..hi) NNN ########". `unit_scale` divides the bucket bounds for
  /// display (e.g. 1000 to print microseconds for nanosecond samples).
  [[nodiscard]] std::string render(double unit_scale = 1.0,
                                   const char* unit = "",
                                   std::size_t max_bar = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace rtec
