#pragma once

#include <string>
#include <vector>

#include "canbus/bus.hpp"
#include "canbus/controller.hpp"
#include "util/expected.hpp"

/// \file candump.hpp
/// Interop with Linux SocketCAN tooling: record simulated bus traffic in
/// `candump -l` log format, and replay candump logs (e.g. captured from a
/// real vcan/can interface) into the simulator.
///
/// Log line format (what candump writes and canplayer reads):
///
///   (1436509053.249713) vcan0 1F334455#DEADBEEF
///
/// i.e. `(seconds.microseconds) <iface> <ID-hex>#<data-hex>`; 8 hex-digit
/// identifiers are extended (29-bit), 3-digit ones base (11-bit); an `R`
/// after `#` marks a remote frame. Corrupted simulated transmissions are
/// not logged (candump on real hardware never sees them either).

namespace rtec {

/// Observer that appends every successful frame to a candump-format log.
class CandumpRecorder {
 public:
  /// Attaches to the bus; frames are buffered and written by save().
  CandumpRecorder(CanBus& bus, std::string interface_name = "rtec0");

  /// Lines recorded so far (one per successful frame).
  [[nodiscard]] const std::vector<std::string>& lines() const { return lines_; }

  /// Writes the log to `path`. Returns false on I/O failure.
  bool save(const std::string& path) const;

  /// Formats one frame the way candump would.
  [[nodiscard]] static std::string format(const CanFrame& frame, TimePoint at,
                                          const std::string& interface_name);

 private:
  std::string iface_;
  std::vector<std::string> lines_;
};

/// One parsed candump log entry.
struct CandumpEntry {
  /// Timestamp exactly as recorded in the log (wall-clock epoch for real
  /// captures, simulation time for our own recordings); the replayer only
  /// uses differences, rebased onto its own start time.
  TimePoint at;
  CanFrame frame;
};

/// Parses a candump log; returns the entries in file order. Malformed
/// lines (bad timestamp, unparsable or out-of-range identifier, odd or
/// oversized data field) are skipped, and their count is reported through
/// `skipped_lines` when non-null — callers ingesting external captures
/// should surface it, since a silently shortened log corrupts replay
/// timing. Blank lines are not counted as malformed.
[[nodiscard]] std::vector<CandumpEntry> parse_candump(
    const std::string& text, std::size_t* skipped_lines = nullptr);

/// Replays parsed entries into the simulation through `controller`:
/// each frame is submitted at `start + (entry.at - first_entry.at)`.
/// Returns the number of frames scheduled.
std::size_t replay_candump(Simulator& sim, CanController& controller,
                           const std::vector<CandumpEntry>& entries,
                           TimePoint start);

}  // namespace rtec
