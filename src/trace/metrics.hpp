#pragma once

#include <array>
#include <cstdint>

#include "canbus/bus.hpp"
#include "sched/id_codec.hpp"
#include "util/stats.hpp"
#include "util/time_types.hpp"

/// \file metrics.hpp
/// Bus- and stream-level measurement probes used by tests and benches.

namespace rtec {

/// Attaches to a CanBus and accounts occupied bus time per traffic class
/// (HRT / SRT / NRT, by the priority field of the identifier). This is how
/// E4 measures "bandwidth reclaimed by less critical traffic".
class ClassUtilization {
 public:
  explicit ClassUtilization(CanBus& bus);

  [[nodiscard]] Duration busy(TrafficClass c) const {
    return busy_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t frames(TrafficClass c) const {
    return frames_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t errors(TrafficClass c) const {
    return errors_[static_cast<std::size_t>(c)];
  }
  /// Fraction of the elapsed window this class occupied the bus.
  [[nodiscard]] double fraction(TrafficClass c) const;

  /// Forgets everything recorded so far and restarts the window at `now`
  /// (lets benches exclude warm-up).
  void reset();

 private:
  CanBus& bus_;
  TimePoint window_start_;
  std::array<Duration, 3> busy_{};
  std::array<std::uint64_t, 3> frames_{};
  std::array<std::uint64_t, 3> errors_{};
};

/// Records per-delivery latencies and derives the paper's jitter measures.
class LatencyProbe {
 public:
  void record(Duration latency) { samples_.add(latency); }

  [[nodiscard]] const SampleSet& samples() const { return samples_; }
  [[nodiscard]] Duration min() const { return Duration::nanoseconds(static_cast<std::int64_t>(samples_.min())); }
  [[nodiscard]] Duration max() const { return Duration::nanoseconds(static_cast<std::int64_t>(samples_.max())); }
  /// Latency jitter: peak-to-peak spread of the transport latency (§2.2
  /// property 2).
  [[nodiscard]] Duration jitter() const {
    return Duration::nanoseconds(
        static_cast<std::int64_t>(samples_.max() - samples_.min()));
  }

 private:
  SampleSet samples_;
};

/// Records absolute delivery instants of a periodic stream and derives the
/// period jitter (§2.2 property 3: variance of the period).
class PeriodProbe {
 public:
  void record_delivery(TimePoint t);

  [[nodiscard]] const OnlineStats& periods() const { return periods_; }
  /// Peak-to-peak period jitter.
  [[nodiscard]] Duration period_jitter() const {
    return Duration::nanoseconds(static_cast<std::int64_t>(periods_.span()));
  }

 private:
  bool has_prev_ = false;
  TimePoint prev_;
  OnlineStats periods_;
};

}  // namespace rtec
