#include "trace/detectors.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rtec {
namespace trace {

double effective_sigma(double mean, double stddev, double rel_floor) {
  return std::max(stddev, rel_floor * mean);
}

namespace {

/// Binary search into an id-sorted entry vector; nullptr when absent.
template <typename Entry>
Entry* find_entry(std::vector<Entry>& ids, std::uint32_t id) {
  auto it = std::lower_bound(
      ids.begin(), ids.end(), id,
      [](const Entry& e, std::uint32_t key) { return e.id < key; });
  if (it == ids.end() || it->id != id) return nullptr;
  return &*it;
}

/// Inserts a fresh entry keeping the vector sorted; nullptr when the
/// tracking budget is exhausted (the caller treats the id as untracked).
template <typename Entry>
Entry* admit_entry(std::vector<Entry>& ids, std::uint32_t id,
                   std::size_t max_tracked) {
  if (ids.size() >= max_tracked) return nullptr;
  auto it = std::lower_bound(
      ids.begin(), ids.end(), id,
      [](const Entry& e, std::uint32_t key) { return e.id < key; });
  Entry e;
  e.id = id;
  return &*ids.insert(it, e);
}

}  // namespace

// -------------------------------------------------------------- MeanIatGate

MeanIatGate::Entry* MeanIatGate::find_or_admit(std::uint32_t id, TimePoint t) {
  if (Entry* e = find_entry(ids_, id)) return e;
  // Admission closes with training: a profile cannot be learned any more,
  // so tracking the id would only grow state without enabling detection.
  if (!in_training(t)) return nullptr;
  return admit_entry(ids_, id, cfg_.max_tracked_ids);
}

void MeanIatGate::on_frame(const CanBus::FrameEvent& ev) {
  const TimePoint t = ev.end;
  Entry* e = find_or_admit(ev.frame.id, t);
  if (e == nullptr) {
    if (!in_training(t)) raise(ev.frame.id, t, 0.0, /*unknown_id=*/true);
    return;
  }
  if (!e->has_last) {
    e->has_last = true;
    e->last = t;
    return;
  }
  const double dt = static_cast<double>((t - e->last).ns());
  e->last = t;
  if (in_training(t)) {
    e->train.add(dt);
    return;
  }
  if (e->train.count() < cfg_.min_train_samples) {
    raise(ev.frame.id, t, 0.0, /*unknown_id=*/true);
    return;
  }
  const double sigma =
      effective_sigma(e->train.mean(), e->train.stddev(), cfg_.rel_floor);
  const double z = std::abs(dt - e->train.mean()) / sigma;
  if (z > cfg_.k) raise(ev.frame.id, t, z);
}

// ------------------------------------------------------------ CusumDetector

CusumDetector::Entry* CusumDetector::find_or_admit(std::uint32_t id,
                                                   TimePoint t) {
  if (Entry* e = find_entry(ids_, id)) return e;
  if (!in_training(t)) return nullptr;
  return admit_entry(ids_, id, cfg_.max_tracked_ids);
}

void CusumDetector::on_frame(const CanBus::FrameEvent& ev) {
  const TimePoint t = ev.end;
  Entry* e = find_or_admit(ev.frame.id, t);
  if (e == nullptr) {
    if (!in_training(t)) raise(ev.frame.id, t, 0.0, /*unknown_id=*/true);
    return;
  }
  if (!e->has_last) {
    e->has_last = true;
    e->last = t;
    return;
  }
  const double dt = static_cast<double>((t - e->last).ns());
  e->last = t;
  if (in_training(t)) {
    e->train.add(dt);
    return;
  }
  if (e->train.count() < cfg_.min_train_samples) {
    raise(ev.frame.id, t, 0.0, /*unknown_id=*/true);
    return;
  }
  const double sigma =
      effective_sigma(e->train.mean(), e->train.stddev(), cfg_.rel_floor);
  const double z = (dt - e->train.mean()) / sigma;
  e->s_pos = std::max(0.0, e->s_pos + z - cfg_.drift);
  e->s_neg = std::max(0.0, e->s_neg - z - cfg_.drift);
  if (e->s_pos > cfg_.threshold) {
    raise(ev.frame.id, t, e->s_pos);
    e->s_pos = 0.0;
  }
  if (e->s_neg > cfg_.threshold) {
    raise(ev.frame.id, t, e->s_neg);
    e->s_neg = 0.0;
  }
}

// -------------------------------------------- WindowFrequencyDetector

WindowFrequencyDetector::WindowFrequencyDetector(Config cfg) : Detector{cfg.train_until}, cfg_{cfg} {
  assert(cfg_.window > Duration::zero());
}

void WindowFrequencyDetector::close_one_window() {
  // Window w spans [w*W, (w+1)*W); its start time decides training vs
  // detection so a window straddling train_until is still training.
  const TimePoint w_start =
      TimePoint::origin() + cfg_.window * static_cast<std::int64_t>(open_window_);
  const bool training = in_training(w_start);
  for (Entry& e : ids_) {
    if (open_window_ < e.first_window) continue;
    if (training) {
      if (e.train_windows == 0) {
        e.min_count = e.count;
        e.max_count = e.count;
      } else {
        e.min_count = std::min(e.min_count, e.count);
        e.max_count = std::max(e.max_count, e.count);
      }
      ++e.train_windows;
    } else if (e.train_windows >= cfg_.min_train_windows) {
      const std::int64_t lo = std::max<std::int64_t>(e.min_count - cfg_.margin, 0);
      const std::int64_t hi = e.max_count + cfg_.margin;
      if (e.count < lo || e.count > hi) {
        const std::int64_t dist = e.count < lo ? lo - e.count : e.count - hi;
        // Alarm timestamp = window close time (when the count is known).
        raise(e.id, w_start + cfg_.window, static_cast<double>(dist));
      }
    }
    e.count = 0;
  }
  ++open_window_;
}

void WindowFrequencyDetector::close_windows_before(TimePoint t) {
  while (TimePoint::origin() +
             cfg_.window * static_cast<std::int64_t>(open_window_ + 1) <=
         t)
    close_one_window();
}

void WindowFrequencyDetector::on_frame(const CanBus::FrameEvent& ev) {
  const TimePoint t = ev.end;
  close_windows_before(t);
  Entry* e = find_entry(ids_, ev.frame.id);
  if (e == nullptr) {
    if (!in_training(t)) {
      raise(ev.frame.id, t, 0.0, /*unknown_id=*/true);
      return;
    }
    e = admit_entry(ids_, ev.frame.id, cfg_.max_tracked_ids);
    if (e == nullptr) return;  // tracking budget exhausted
    e->first_window = open_window_;
  }
  ++e->count;
}

void WindowFrequencyDetector::finish(TimePoint now) {
  close_windows_before(now);
}

}  // namespace trace
}  // namespace rtec
