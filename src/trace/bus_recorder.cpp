#include "trace/bus_recorder.hpp"

#include <cstdio>
#include <fstream>

#include "sched/id_codec.hpp"

namespace rtec {

BusRecorder::BusRecorder(CanBus& bus) {
  bus.add_observer(
      [this](const CanBus::FrameEvent& ev) { events_.push_back(ev); });
}

std::vector<CanBus::FrameEvent> BusRecorder::filtered(std::uint32_t match,
                                                      std::uint32_t mask) const {
  std::vector<CanBus::FrameEvent> out;
  for (const auto& ev : events_)
    if ((ev.frame.id & mask) == (match & mask)) out.push_back(ev);
  return out;
}

std::size_t BusRecorder::first_divergence(const BusRecorder& a,
                                          const BusRecorder& b) {
  const std::size_t n = std::min(a.events_.size(), b.events_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& x = a.events_[i];
    const auto& y = b.events_[i];
    if (x.frame.id != y.frame.id || x.start != y.start ||
        x.success != y.success)
      return i;
  }
  return n;
}

bool BusRecorder::save_csv(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  out << "start_ns,end_ns,id_hex,prio,node,etag,dlc,success,attempt,bits\n";
  char line[160];
  for (const auto& ev : events_) {
    const CanIdFields f = decode_can_id(ev.frame.id);
    std::snprintf(line, sizeof line,
                  "%lld,%lld,%08X,%u,%u,%u,%u,%d,%d,%d\n",
                  static_cast<long long>(ev.start.ns()),
                  static_cast<long long>(ev.end.ns()), ev.frame.id, f.priority,
                  f.tx_node, f.etag, ev.frame.dlc, ev.success ? 1 : 0,
                  ev.attempt, ev.wire_bits);
    out << line;
  }
  return out.good();
}

}  // namespace rtec
