#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>

/// \file csv.hpp
/// Tiny CSV writer so every bench can dump its table for offline plotting
/// alongside the stdout rendering.

namespace rtec {

class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Writing to an unopened file is
  /// silently dropped so benches can make CSV output optional.
  explicit CsvWriter(const std::string& path) : out_{path} {}
  CsvWriter() = default;

  [[nodiscard]] bool ok() const { return out_.is_open() && out_.good(); }

  void header(std::initializer_list<std::string_view> cols) { write_row(cols); }

  template <typename... Ts>
  void row(const Ts&... values) {
    if (!out_.is_open()) return;
    bool first = true;
    ((out_ << (first ? (first = false, "") : ",") << values), ...);
    out_ << '\n';
  }

 private:
  void write_row(std::initializer_list<std::string_view> cols) {
    if (!out_.is_open()) return;
    bool first = true;
    for (auto c : cols) {
      if (!first) out_ << ',';
      out_ << c;
      first = false;
    }
    out_ << '\n';
  }

  std::ofstream out_;
};

}  // namespace rtec
