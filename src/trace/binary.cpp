#include "trace/binary.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace rtec {
namespace trace {

// ---------------------------------------------------------------------------
// Wire primitives. LEB128 varints, zigzag for signed values, and raw
// little-endian f64 — byte shifts only, so the encoding is identical on
// big-endian hosts (pinned by the golden-bytes test in test_rteb.cpp).
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint8_t kKindShift = 5;
constexpr std::uint8_t kFlagMask = 0x1F;

// kFrame flags.
constexpr std::uint8_t kFrameSuccess = 1u << 0;
constexpr std::uint8_t kFrameCollision = 1u << 1;
constexpr std::uint8_t kFrameNewId = 1u << 2;
constexpr std::uint8_t kFrameMeta = 1u << 3;
constexpr std::uint8_t kFramePayload = 1u << 4;

// kAlarm flags.
constexpr std::uint8_t kAlarmUnknownId = 1u << 0;

// kHandoff flags.
constexpr std::uint8_t kHandoffLatency = 1u << 0;
constexpr std::uint8_t kHandoffSeqResidual = 1u << 1;

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(0x80u | (v & 0x7Fu)));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_svarint(std::string& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFFu));
}

/// Cursor over one record's payload; all get_* return false on overrun.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;

  bool get_u8(std::uint8_t& out) {
    if (p == end) return false;
    out = *p++;
    return true;
  }
  bool get_varint(std::uint64_t& out) {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p == end) return false;
      const std::uint8_t b = *p++;
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) {
        out = v;
        return true;
      }
    }
    return false;  // varint longer than 64 bits
  }
  bool get_svarint(std::int64_t& out) {
    std::uint64_t v = 0;
    if (!get_varint(v)) return false;
    out = unzigzag(v);
    return true;
  }
  bool get_f64(double& out) {
    if (end - p < 8) return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    std::memcpy(&out, &bits, sizeof out);
    return true;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// RtebWriter
// ---------------------------------------------------------------------------

RtebWriter::RtebWriter(std::uint16_t network) { write_header(network); }

RtebWriter::RtebWriter(const std::string& path, std::uint16_t network) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) io_ok_ = false;
  write_header(network);
}

RtebWriter::~RtebWriter() { finish(); }

void RtebWriter::write_header(std::uint16_t network) {
  std::string h;
  for (std::uint8_t b : kRtebMagic) h.push_back(static_cast<char>(b));
  h.push_back(static_cast<char>(kRtebVersion & 0xFFu));
  h.push_back(static_cast<char>(kRtebVersion >> 8));
  h.push_back(static_cast<char>(network & 0xFFu));
  h.push_back(static_cast<char>(network >> 8));
  for (int i = 0; i < 4; ++i) h.push_back('\0');
  assert(h.size() == kRtebHeaderSize);
  sink(h.data(), h.size());
}

void RtebWriter::sink(const char* data, std::size_t n) {
  buf_.append(data, n);
  bytes_written_ += n;
  if (file_ != nullptr && buf_.size() > 64 * 1024) {
    if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size())
      io_ok_ = false;
    buf_.clear();
  }
}

void RtebWriter::emit_record(const std::string& payload) {
  assert(!payload.empty() && payload.size() <= 255 && "record overflows u8 length");
  const char len = static_cast<char>(payload.size());
  sink(&len, 1);
  sink(payload.data(), payload.size());
  ++records_;
}

bool RtebWriter::finish() {
  if (file_ != nullptr) {
    if (!buf_.empty()) {
      if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size())
        io_ok_ = false;
      buf_.clear();
    }
    if (std::fclose(file_) != 0) io_ok_ = false;
    file_ = nullptr;
  }
  return io_ok_;
}

const std::string& RtebWriter::bytes() const {
  assert(file_ == nullptr && "bytes() is for memory-backed writers");
  return buf_;
}

RtebWriter::IdState* RtebWriter::find_id(std::uint32_t id) {
  const auto it = std::lower_bound(
      ids_.begin(), ids_.end(), id,
      [](const IdState& s, std::uint32_t v) { return s.id < v; });
  if (it != ids_.end() && it->id == id) return &*it;
  return nullptr;
}

RtebWriter::ChannelState& RtebWriter::find_channel(std::uint32_t channel) {
  const auto it = std::lower_bound(
      channels_.begin(), channels_.end(), channel,
      [](const ChannelState& s, std::uint32_t v) { return s.channel < v; });
  if (it != channels_.end() && it->channel == channel) return *it;
  ChannelState st;
  st.channel = channel;
  return *channels_.insert(it, st);
}

/// kFrame payload: id (varint: full identifier when kFrameNewId, else the
/// first-seen-order reference) | time (zigzag varint: residual vs the
/// per-id prediction, or vs the previous record's time for a new id) |
/// [meta: sender u8, format u8 (bit0 extended, bit1 rtr), dlc u8,
/// wire_bits varint, attempt varint] | [payload: dlc bytes]. Meta and
/// payload blocks appear only when they differ from the per-id cache
/// (zero-initialized on first sight, mirrored by the reader).
void RtebWriter::add_frame(const CanBus::FrameEvent& ev) {
  IdState* st = find_id(ev.frame.id);
  const bool new_id = st == nullptr;
  if (new_id) {
    IdState fresh;
    fresh.id = ev.frame.id;
    fresh.order = static_cast<std::uint32_t>(ids_.size());
    const auto it = std::lower_bound(
        ids_.begin(), ids_.end(), ev.frame.id,
        [](const IdState& s, std::uint32_t v) { return s.id < v; });
    st = &*ids_.insert(it, fresh);
  }

  const std::int64_t t = ev.end.ns();
  const std::uint8_t format =
      static_cast<std::uint8_t>((ev.frame.extended ? 1u : 0u) |
                                (ev.frame.rtr ? 2u : 0u));
  const bool meta_changed =
      ev.sender != st->sender || format != st->meta_flags ||
      ev.frame.dlc != st->dlc || ev.wire_bits != st->wire_bits ||
      ev.attempt != st->attempt;
  const bool payload_changed =
      !ev.frame.rtr &&
      !std::equal(ev.frame.data.begin(), ev.frame.data.begin() + ev.frame.dlc,
                  st->payload.begin());

  std::uint8_t flags = 0;
  if (ev.success) flags |= kFrameSuccess;
  if (ev.collision) flags |= kFrameCollision;
  if (new_id) flags |= kFrameNewId;
  if (meta_changed) flags |= kFrameMeta;
  if (payload_changed) flags |= kFramePayload;

  std::string rec;
  rec.push_back(static_cast<char>(
      (static_cast<std::uint8_t>(RtebKind::kFrame) << kKindShift) | flags));
  if (new_id) {
    put_varint(rec, ev.frame.id);
    put_svarint(rec, t - prev_record_t_ns_);
  } else {
    put_varint(rec, st->order);
    put_svarint(rec, t - (st->last_t_ns + st->last_delta_ns));
    st->last_delta_ns = t - st->last_t_ns;
  }
  st->last_t_ns = t;
  if (meta_changed) {
    rec.push_back(static_cast<char>(ev.sender));
    rec.push_back(static_cast<char>(format));
    rec.push_back(static_cast<char>(ev.frame.dlc));
    put_varint(rec, static_cast<std::uint64_t>(ev.wire_bits));
    put_varint(rec, static_cast<std::uint64_t>(ev.attempt));
    st->sender = ev.sender;
    st->meta_flags = format;
    st->dlc = ev.frame.dlc;
    st->wire_bits = ev.wire_bits;
    st->attempt = ev.attempt;
  }
  if (payload_changed) {
    rec.append(reinterpret_cast<const char*>(ev.frame.data.data()),
               ev.frame.dlc);
    std::copy(ev.frame.data.begin(), ev.frame.data.begin() + ev.frame.dlc,
              st->payload.begin());
  }
  emit_record(rec);
  prev_record_t_ns_ = t;
}

/// kAlarm payload: detector index (varint, into the kDetectorDef table) |
/// time (zigzag varint, delta vs previous record) | id (varint) |
/// score (f64 LE). Flag bit 0 = unknown_id. A kDetectorDef record
/// (payload: the name bytes) interns each detector name before its first
/// alarm.
void RtebWriter::add_alarm(const char* detector, TimePoint at,
                           std::uint32_t id, double score, bool unknown_id) {
  const std::string name = detector != nullptr ? detector : "";
  std::size_t index = detectors_.size();
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    if (detectors_[i] == name) {
      index = i;
      break;
    }
  }
  if (index == detectors_.size()) {
    detectors_.push_back(name);
    std::string def;
    def.push_back(static_cast<char>(
        static_cast<std::uint8_t>(RtebKind::kDetectorDef) << kKindShift));
    def.append(name, 0, 253);  // u8 record length bounds the name
    emit_record(def);
  }

  std::string rec;
  rec.push_back(static_cast<char>(
      (static_cast<std::uint8_t>(RtebKind::kAlarm) << kKindShift) |
      (unknown_id ? kAlarmUnknownId : 0u)));
  put_varint(rec, index);
  put_svarint(rec, at.ns() - prev_record_t_ns_);
  put_varint(rec, id);
  put_f64(rec, score);
  emit_record(rec);
  prev_record_t_ns_ = at.ns();
}

/// kHandoff payload: channel (varint) | send time (zigzag varint, delta vs
/// previous record) | [latency ns varint, when it differs from the
/// channel's cached latency] | [seq residual (zigzag varint vs the
/// channel's expected next seq), when irregular]. release = send + latency;
/// seq defaults to one past the previous handoff on the channel.
void RtebWriter::add_handoff(TimePoint send, TimePoint release,
                             std::uint32_t channel, std::uint64_t seq) {
  ChannelState& st = find_channel(channel);
  const std::int64_t latency = (release - send).ns();
  const bool latency_changed = latency != st.latency_ns;
  const bool seq_irregular = seq != st.next_seq;

  std::uint8_t flags = 0;
  if (latency_changed) flags |= kHandoffLatency;
  if (seq_irregular) flags |= kHandoffSeqResidual;

  std::string rec;
  rec.push_back(static_cast<char>(
      (static_cast<std::uint8_t>(RtebKind::kHandoff) << kKindShift) | flags));
  put_varint(rec, channel);
  put_svarint(rec, send.ns() - prev_record_t_ns_);
  if (latency_changed) {
    put_svarint(rec, latency);
    st.latency_ns = latency;
  }
  if (seq_irregular)
    put_svarint(rec, static_cast<std::int64_t>(seq - st.next_seq));
  st.next_seq = seq + 1;
  emit_record(rec);
  prev_record_t_ns_ = send.ns();
}

// ---------------------------------------------------------------------------
// RtebReader
// ---------------------------------------------------------------------------

Expected<RtebReader, std::string> RtebReader::open(std::string_view data) {
  if (data.size() < kRtebHeaderSize)
    return Unexpected{std::string{"truncated header: file smaller than 12 bytes"}};
  for (std::size_t i = 0; i < kRtebMagic.size(); ++i) {
    if (static_cast<std::uint8_t>(data[i]) != kRtebMagic[i])
      return Unexpected{std::string{"bad magic: not an RTEB trace"}};
  }
  const auto u16 = [&data](std::size_t off) {
    return static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data[off]) |
        (static_cast<std::uint8_t>(data[off + 1]) << 8));
  };
  const std::uint16_t version = u16(4);
  if (version != kRtebVersion)
    return Unexpected{"unsupported RTEB version " + std::to_string(version)};
  return RtebReader{data, version, u16(6)};
}

std::string RtebReader::at_offset(const char* what) const {
  return std::string{what} + " at byte offset " + std::to_string(pos_);
}

Expected<std::optional<RtebRecord>, std::string> RtebReader::next() {
  for (;;) {
    if (pos_ == data_.size()) return std::optional<RtebRecord>{};
    const std::size_t len = static_cast<std::uint8_t>(data_[pos_]);
    if (len == 0) return Unexpected{at_offset("zero-length record")};
    if (data_.size() - pos_ < 1 + len)
      return Unexpected{at_offset("truncated record")};
    Cursor c{reinterpret_cast<const std::uint8_t*>(data_.data()) + pos_ + 1,
             reinterpret_cast<const std::uint8_t*>(data_.data()) + pos_ + 1 +
                 len};
    const std::uint8_t kindflags = *c.p++;
    const std::uint8_t kind = kindflags >> kKindShift;
    const std::uint8_t flags = kindflags & kFlagMask;
    RtebRecord out;

    switch (static_cast<RtebKind>(kind)) {
      case RtebKind::kFrame: {
        out.kind = RtebKind::kFrame;
        RtebFrame& f = out.frame;
        std::uint64_t idv = 0;
        std::int64_t dt = 0;
        if (!c.get_varint(idv) || !c.get_svarint(dt))
          return Unexpected{at_offset("truncated frame record")};
        IdState* st = nullptr;
        std::int64_t t = 0;
        if ((flags & kFrameNewId) != 0) {
          if (idv > kMaxExtendedId)
            return Unexpected{at_offset("frame identifier out of range")};
          IdState fresh;
          fresh.id = static_cast<std::uint32_t>(idv);
          fresh.last.frame.id = fresh.id;
          fresh.last.frame.extended = false;
          ids_.push_back(fresh);
          st = &ids_.back();
          t = prev_record_t_ns_ + dt;
        } else {
          if (idv >= ids_.size())
            return Unexpected{at_offset("dangling frame identifier reference")};
          st = &ids_[idv];
          t = st->last_t_ns + st->last_delta_ns + dt;
          st->last_delta_ns = t - st->last_t_ns;
        }
        st->last_t_ns = t;
        f = st->last;
        f.at = TimePoint::from_ns(t);
        f.success = (flags & kFrameSuccess) != 0;
        f.collision = (flags & kFrameCollision) != 0;
        if ((flags & kFrameMeta) != 0) {
          std::uint8_t sender = 0;
          std::uint8_t format = 0;
          std::uint8_t dlc = 0;
          std::uint64_t wire = 0;
          std::uint64_t attempt = 0;
          if (!c.get_u8(sender) || !c.get_u8(format) || !c.get_u8(dlc) ||
              !c.get_varint(wire) || !c.get_varint(attempt))
            return Unexpected{at_offset("truncated frame meta block")};
          if (dlc > 8) return Unexpected{at_offset("frame dlc out of range")};
          f.sender = static_cast<NodeId>(sender);
          f.frame.extended = (format & 1u) != 0;
          f.frame.rtr = (format & 2u) != 0;
          f.frame.dlc = dlc;
          f.wire_bits = static_cast<int>(wire);
          f.attempt = static_cast<int>(attempt);
        }
        if ((flags & kFramePayload) != 0) {
          if (c.end - c.p < f.frame.dlc)
            return Unexpected{at_offset("truncated frame payload")};
          std::copy(c.p, c.p + f.frame.dlc, f.frame.data.begin());
          c.p += f.frame.dlc;
        }
        st->last = f;
        prev_record_t_ns_ = t;
        break;
      }
      case RtebKind::kAlarm: {
        out.kind = RtebKind::kAlarm;
        RtebAlarm& a = out.alarm;
        std::uint64_t det = 0;
        std::int64_t dt = 0;
        std::uint64_t id = 0;
        if (!c.get_varint(det) || !c.get_svarint(dt) || !c.get_varint(id) ||
            !c.get_f64(a.score))
          return Unexpected{at_offset("truncated alarm record")};
        if (det >= detectors_.size())
          return Unexpected{at_offset("dangling detector reference")};
        a.detector = detectors_[det];
        a.id = static_cast<std::uint32_t>(id);
        a.unknown_id = (flags & kAlarmUnknownId) != 0;
        prev_record_t_ns_ += dt;
        a.at = TimePoint::from_ns(prev_record_t_ns_);
        break;
      }
      case RtebKind::kHandoff: {
        out.kind = RtebKind::kHandoff;
        RtebHandoff& h = out.handoff;
        std::uint64_t channel = 0;
        std::int64_t dt = 0;
        if (!c.get_varint(channel) || !c.get_svarint(dt))
          return Unexpected{at_offset("truncated handoff record")};
        const auto it = std::lower_bound(
            channels_.begin(), channels_.end(), channel,
            [](const ChannelState& s, std::uint64_t v) { return s.channel < v; });
        ChannelState* st = nullptr;
        if (it != channels_.end() && it->channel == channel) {
          st = &*it;
        } else {
          ChannelState fresh;
          fresh.channel = static_cast<std::uint32_t>(channel);
          st = &*channels_.insert(it, fresh);
        }
        if ((flags & kHandoffLatency) != 0) {
          if (!c.get_svarint(st->latency_ns))
            return Unexpected{at_offset("truncated handoff latency")};
        } else if (st->latency_ns < 0) {
          return Unexpected{at_offset("handoff before its channel latency")};
        }
        std::uint64_t seq = st->next_seq;
        if ((flags & kHandoffSeqResidual) != 0) {
          std::int64_t residual = 0;
          if (!c.get_svarint(residual))
            return Unexpected{at_offset("truncated handoff seq residual")};
          seq = st->next_seq + static_cast<std::uint64_t>(residual);
        }
        st->next_seq = seq + 1;
        prev_record_t_ns_ += dt;
        h.channel = static_cast<std::uint32_t>(channel);
        h.seq = seq;
        h.send = TimePoint::from_ns(prev_record_t_ns_);
        h.release = h.send + Duration::nanoseconds(st->latency_ns);
        break;
      }
      case RtebKind::kDetectorDef: {
        detectors_.emplace_back(reinterpret_cast<const char*>(c.p),
                                static_cast<std::size_t>(c.end - c.p));
        pos_ += 1 + len;
        continue;  // bookkeeping record, not surfaced
      }
      default:
        return Unexpected{at_offset("unknown record kind")};
    }
    if (c.p > c.end) return Unexpected{at_offset("record overran its length")};
    pos_ += 1 + len;
    return std::optional<RtebRecord>{std::move(out)};
  }
}

Expected<std::vector<RtebRecord>, std::string> RtebReader::read_all() {
  std::vector<RtebRecord> out;
  for (;;) {
    auto r = next();
    if (!r) return Unexpected{r.error()};
    if (!r.value()) return out;
    out.push_back(std::move(*r.value()));
  }
}

// ---------------------------------------------------------------------------
// candump interop
// ---------------------------------------------------------------------------

Expected<std::string, std::string> rteb_to_candump(
    std::string_view rteb, const std::string& interface_name) {
  auto reader = RtebReader::open(rteb);
  if (!reader) return Unexpected{reader.error()};
  std::string out;
  for (;;) {
    auto r = reader->next();
    if (!r) return Unexpected{r.error()};
    if (!r.value()) return out;
    const RtebRecord& rec = *r.value();
    if (rec.kind != RtebKind::kFrame || !rec.frame.success) continue;
    out += CandumpRecorder::format(rec.frame.frame, rec.frame.at,
                                   interface_name);
    out += '\n';
  }
}

std::string rteb_from_candump(const std::string& text, std::uint16_t network,
                              std::size_t* skipped_lines) {
  RtebWriter w{network};
  for (const CandumpEntry& e : parse_candump(text, skipped_lines)) {
    CanBus::FrameEvent ev;
    ev.frame = e.frame;
    ev.end = e.at;
    ev.start = e.at;  // the text format has no SOF time
    ev.success = true;
    ev.attempt = 1;
    w.add_frame(ev);
  }
  return w.bytes();
}

// ---------------------------------------------------------------------------
// RtebRecorder
// ---------------------------------------------------------------------------

namespace {
void attach(RtebWriter& w, CanBus& bus) {
  RtebWriter* wp = &w;
  bus.add_observer([wp](const CanBus::FrameEvent& ev) { wp->add_frame(ev); });
}
}  // namespace

RtebRecorder::RtebRecorder(CanBus& bus, std::uint16_t network)
    : writer_{network} {
  attach(writer_, bus);
}

RtebRecorder::RtebRecorder(CanBus& bus, std::uint16_t network,
                           const std::string& path)
    : writer_{path, network} {
  attach(writer_, bus);
}

}  // namespace trace
}  // namespace rtec
