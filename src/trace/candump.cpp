#include "trace/candump.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rtec {

CandumpRecorder::CandumpRecorder(CanBus& bus, std::string interface_name)
    : iface_{std::move(interface_name)} {
  bus.add_observer([this](const CanBus::FrameEvent& ev) {
    if (!ev.success) return;  // error frames never reach candump
    lines_.push_back(format(ev.frame, ev.end, iface_));
  });
}

std::string CandumpRecorder::format(const CanFrame& frame, TimePoint at,
                                    const std::string& interface_name) {
  char buf[96];
  const std::int64_t secs = at.ns() / 1'000'000'000;
  const std::int64_t micros = at.ns() % 1'000'000'000 / 1000;
  int off;
  if (frame.extended) {
    off = std::snprintf(buf, sizeof buf, "(%lld.%06lld) %s %08X#",
                        static_cast<long long>(secs),
                        static_cast<long long>(micros),
                        interface_name.c_str(), frame.id);
  } else {
    off = std::snprintf(buf, sizeof buf, "(%lld.%06lld) %s %03X#",
                        static_cast<long long>(secs),
                        static_cast<long long>(micros),
                        interface_name.c_str(), frame.id);
  }
  if (frame.rtr) {
    off += std::snprintf(buf + off, sizeof buf - static_cast<std::size_t>(off),
                         "R");
  } else {
    for (int i = 0; i < frame.dlc; ++i)
      off += std::snprintf(buf + off,
                           sizeof buf - static_cast<std::size_t>(off), "%02X",
                           frame.data[static_cast<std::size_t>(i)]);
  }
  return std::string{buf, static_cast<std::size_t>(off)};
}

bool CandumpRecorder::save(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  for (const std::string& line : lines_) out << line << '\n';
  return out.good();
}

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parse_hex(const std::string& s, std::uint32_t& out) {
  if (s.empty() || s.size() > 8) return false;
  std::uint32_t v = 0;
  for (char c : s) {
    const int d = hex_value(c);
    if (d < 0) return false;
    v = (v << 4) | static_cast<std::uint32_t>(d);
  }
  out = v;
  return true;
}

}  // namespace

std::vector<CandumpEntry> parse_candump(const std::string& text,
                                        std::size_t* skipped_lines) {
  std::vector<CandumpEntry> out;
  std::size_t skipped = 0;
  std::istringstream in{text};
  std::string line;
  // `skip` marks the current line malformed; blank lines fall through
  // without being counted.
  const auto skip = [&skipped] {
    ++skipped;
    return false;
  };
  const auto parse_line = [&](const std::string& l) {
    // "(secs.micros) iface ID#DATA"
    std::istringstream ls{l};
    std::string ts;
    std::string iface;
    std::string frame_str;
    if (!(ls >> ts)) return true;  // blank line
    if (!(ls >> iface >> frame_str)) return skip();
    if (ts.size() < 3 || ts.front() != '(' || ts.back() != ')') return skip();

    long long secs = 0;
    long long micros = 0;
    if (std::sscanf(ts.c_str(), "(%lld.%lld)", &secs, &micros) != 2)
      return skip();

    const std::size_t hash = frame_str.find('#');
    if (hash == std::string::npos) return skip();
    const std::string id_str = frame_str.substr(0, hash);
    const std::string data_str = frame_str.substr(hash + 1);

    CandumpEntry entry;
    entry.at = TimePoint::from_ns(secs * 1'000'000'000 + micros * 1000);
    if (!parse_hex(id_str, entry.frame.id)) return skip();
    entry.frame.extended = id_str.size() > 3;
    if (entry.frame.extended && entry.frame.id > kMaxExtendedId) return skip();
    if (!entry.frame.extended && entry.frame.id > kMaxBaseId) return skip();

    if (!data_str.empty() && (data_str[0] == 'R' || data_str[0] == 'r')) {
      entry.frame.rtr = true;
      entry.frame.dlc = 0;
    } else {
      if (data_str.size() % 2 != 0 || data_str.size() > 16) return skip();
      entry.frame.dlc = static_cast<std::uint8_t>(data_str.size() / 2);
      for (int i = 0; i < entry.frame.dlc; ++i) {
        const int hi = hex_value(data_str[static_cast<std::size_t>(2 * i)]);
        const int lo = hex_value(data_str[static_cast<std::size_t>(2 * i + 1)]);
        if (hi < 0 || lo < 0) return skip();
        entry.frame.data[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((hi << 4) | lo);
      }
    }
    out.push_back(entry);
    return true;
  };
  while (std::getline(in, line)) parse_line(line);
  if (skipped_lines != nullptr) *skipped_lines = skipped;
  return out;
}

std::size_t replay_candump(Simulator& sim, CanController& controller,
                           const std::vector<CandumpEntry>& entries,
                           TimePoint start) {
  if (entries.empty()) return 0;
  const TimePoint base = entries.front().at;
  std::size_t scheduled = 0;
  for (const CandumpEntry& entry : entries) {
    const TimePoint at = start + (entry.at - base);
    if (at < sim.now()) continue;
    const CanFrame frame = entry.frame;
    CanController* ctl = &controller;
    sim.schedule_at(at, [ctl, frame] {
      (void)ctl->submit(frame, TxMode::kAutoRetransmit);
    });
    ++scheduled;
  }
  return scheduled;
}

}  // namespace rtec
