#include "trace/registry.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace rtec {
namespace trace {

namespace {

/// Metric names are repo-controlled ([A-Za-z0-9._-]), but escape the JSON
/// specials anyway so a stray name can never produce an unparsable
/// snapshot.
void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_value(std::string& out, const MetricsRegistry::Value& v) {
  char buf[64];
  if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    std::snprintf(buf, sizeof buf, "%" PRIu64, *u);
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    std::snprintf(buf, sizeof buf, "%" PRId64, *i);
  } else {
    // Shortest-exact would be nicer; %.17g is exact on re-read and
    // deterministic, matching bench/sweep.hpp's BenchJson convention.
    std::snprintf(buf, sizeof buf, "%.17g", std::get<double>(v));
  }
  out += buf;
}

void export_span(MetricsRegistry& reg, const std::string& prefix,
                 const SpanStats& s) {
  reg.set(prefix + ".count", s.count);
  reg.set(prefix + ".total_ns", s.count > 0 ? s.total_ns : 0);
  reg.set(prefix + ".min_ns", s.count > 0 ? s.min_ns : 0);
  reg.set(prefix + ".max_ns", s.count > 0 ? s.max_ns : 0);
  reg.set(prefix + ".mean_ns", s.mean_ns());
}

}  // namespace

std::optional<double> MetricsRegistry::get_double(
    const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  if (const auto* u = std::get_if<std::uint64_t>(&it->second))
    return static_cast<double>(*u);
  if (const auto* i = std::get_if<std::int64_t>(&it->second))
    return static_cast<double>(*i);
  return std::get<double>(it->second);
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) out += ",\n";
    first = false;
    out += "  ";
    append_json_string(out, name);
    out += ": ";
    append_value(out, value);
  }
  out += "\n}\n";
  return out;
}

bool MetricsRegistry::save(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  out << to_json();
  return out.good();
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const Simulator::Stats& kernel) {
  reg.set(prefix + ".events_scheduled", kernel.scheduled);
  reg.set(prefix + ".events_injected", kernel.injected);
  reg.set(prefix + ".events_cancelled", kernel.cancelled);
  reg.set(prefix + ".events_fired", kernel.fired);
  reg.set(prefix + ".heap_compactions", kernel.compactions);
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const ShardEngine& engine) {
  const ShardEngine::Stats& s = engine.stats();
  reg.set(prefix + ".shards", static_cast<std::uint64_t>(engine.shard_count()));
  reg.set(prefix + ".threads", static_cast<std::uint64_t>(engine.threads()));
  reg.set(prefix + ".epochs", s.epochs);
  reg.set(prefix + ".handoffs", s.handoffs);
  reg.set(prefix + ".shard_runs", s.shard_runs);
  reg.set(prefix + ".shard_skips", s.shard_skips);
  reg.set(prefix + ".handoff_batches", s.handoff_batches);
  reg.set(prefix + ".handoff_bytes", s.handoff_bytes);
  reg.set(prefix + ".barrier_spins", s.barrier_spins);
  reg.set(prefix + ".barrier_parks", s.barrier_parks);
  for (std::size_t b = 0; b < s.horizon_advance_log2.size(); ++b) {
    if (s.horizon_advance_log2[b] == 0) continue;  // sparse: most are empty
    char key[40];
    std::snprintf(key, sizeof key, ".horizon_log2.%02zu", b);
    reg.set(prefix + key, s.horizon_advance_log2[b]);
  }
  for (std::size_t i = 0; i < s.per_shard_runs.size(); ++i) {
    char key[40];
    std::snprintf(key, sizeof key, ".shard.%03zu.runs", i);
    reg.set(prefix + key, s.per_shard_runs[i]);
    std::snprintf(key, sizeof key, ".shard.%03zu.skips", i);
    reg.set(prefix + key, s.per_shard_skips[i]);
  }
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const CanBus& bus) {
  reg.set(prefix + ".frames_ok", bus.frames_ok());
  reg.set(prefix + ".frames_error", bus.frames_error());
  reg.set(prefix + ".busy_ns", bus.busy_time().ns());
  reg.set(prefix + ".error_ns", bus.error_time().ns());
  reg.set(prefix + ".utilization", bus.utilization());
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const ClassUtilization& util) {
  static constexpr const char* kClasses[] = {"hrt", "srt", "nrt"};
  for (std::size_t c = 0; c < 3; ++c) {
    const auto tc = static_cast<TrafficClass>(c);
    const std::string base = prefix + "." + kClasses[c];
    reg.set(base + ".frames", util.frames(tc));
    reg.set(base + ".errors", util.errors(tc));
    reg.set(base + ".busy_ns", util.busy(tc).ns());
    reg.set(base + ".fraction", util.fraction(tc));
  }
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const LatencyProbe& probe) {
  const SampleSet& s = probe.samples();
  reg.set(prefix + ".count", static_cast<std::uint64_t>(s.count()));
  if (s.empty()) return;
  reg.set(prefix + ".min_ns", probe.min().ns());
  reg.set(prefix + ".max_ns", probe.max().ns());
  reg.set(prefix + ".jitter_ns", probe.jitter().ns());
  reg.set(prefix + ".mean_ns", s.mean());
  reg.set(prefix + ".p50_ns", s.quantile(0.50));
  reg.set(prefix + ".p99_ns", s.quantile(0.99));
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const Histogram& hist) {
  reg.set(prefix + ".count", static_cast<std::uint64_t>(hist.count()));
  reg.set(prefix + ".underflow", static_cast<std::uint64_t>(hist.underflow()));
  reg.set(prefix + ".overflow", static_cast<std::uint64_t>(hist.overflow()));
  if (hist.count() == 0) return;
  reg.set(prefix + ".p50", hist.quantile(0.50));
  reg.set(prefix + ".p90", hist.quantile(0.90));
  reg.set(prefix + ".p99", hist.quantile(0.99));
  reg.set(prefix + ".max", hist.quantile(1.0));
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const SpanProfiler& prof) {
  for (std::size_t i = 0; i < prof.size(); ++i)
    export_span(reg, prefix + "." + prof.name(i), prof.at(i));
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const StreamTap& tap) {
  reg.set(prefix + ".deliveries", tap.deliveries());
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const Detector& det) {
  const std::string base = prefix + "." + det.name();
  reg.set(base + ".alarms", det.alarm_count());
  reg.set(base + ".unknown_id_frames", det.unknown_id_frames());
  reg.set(base + ".first_alarm_ns",
          det.first_alarm() ? det.first_alarm()->ns() : std::int64_t{-1});
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const DetectorBank& bank) {
  for (std::size_t i = 0; i < bank.size(); ++i)
    export_metrics(reg, prefix, bank.at(i));
}

void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                    const RtebWriter& writer) {
  reg.set(prefix + ".bytes", writer.bytes_written());
  reg.set(prefix + ".records", writer.records());
}

}  // namespace trace
}  // namespace rtec
