#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/scenario_spec.hpp"
#include "sched/calendar_io.hpp"
#include "util/time_types.hpp"

/// \file topology.hpp
/// Declarative description of a gateway-connected multi-segment deployment
/// — the input of the whole-topology static verifier (analysis/verify.hpp,
/// tools/rtec_verify). A single calendar image describes one segment; this
/// format describes how segments are wired together: which gateway links
/// exist, which event tags each gateway bridges, which cross-segment
/// channels (routes) the deployment promises end-to-end deadlines for, and
/// the per-segment facts (calendar image, measured clock precision, local
/// background traffic) the quantitative rules need.
///
/// Text format (one directive per line, `#` starts a comment):
///
///   topology v1
///   segment id=0 calendar=seg0.cal precision_ns=33000 fault_rate=0.01
///   segment id=1 precision_ns=33000
///   link id=0 a=0 b=1 latency_us=250
///   bridge link=0 etag=40
///   route etag=40 from=0 to=1 period_us=7000 hop_deadline_us=10000
///         ... e2e_deadline_us=30000 dlc=8 miss_target=1e-6
///         (one line; wrapped for width)
///   stream segment=1 class=srt node=3 etag=20 dlc=8 period_us=5000
///
/// Like the calendar-image and scenario formats, parsing is strict: unknown
/// directives or keys, duplicate keys and malformed values are hard errors
/// with a line number. *Semantic* problems — dangling segment references,
/// routing cycles, infeasible bandwidth — parse fine and are the verifier's
/// findings (rules RTEC-T001..T011), because the verifier must be able to
/// describe a broken topology, not merely refuse to read it.
///
/// `calendar=` values are file references resolved by the caller (the CLI
/// resolves them relative to the topology file); the library works on a
/// TopologyInput that pairs the spec with already-parsed CalendarImages.

namespace rtec::analysis {

/// One network segment (field bus) of the deployment.
struct SegmentSpec {
  int id = 0;
  /// Calendar image reference (empty = segment runs no HRT reservations).
  std::string calendar;
  /// Measured worst-case clock disagreement Π of this segment's nodes.
  std::optional<Duration> precision;
  /// Per-attempt omission-fault probability of this segment's bus (the
  /// fault framework's RandomOmissionFaults rate). 0 = assumed fault-free;
  /// the probabilistic rule RTEC-T012 keys on it.
  double fault_rate = 0.0;
  int line = 0;
};

/// One bidirectional gateway link between two segments. `latency` is the
/// gateway's store-and-forward delay (Scenario::link_gateway) — and, under
/// the sharded engine, the conservative lookahead the link contributes.
struct LinkSpec {
  int id = 0;
  int a = 0;
  int b = 0;
  Duration latency = Duration::zero();
  int line = 0;
};

/// The gateway of `link` bridges event tag `etag` (both directions).
struct BridgeSpec {
  int link = 0;
  Etag etag = 0;
  int line = 0;
};

/// One cross-segment SRT event channel with an end-to-end promise: events
/// published on segment `from` must reach subscribers on segment `to`
/// within `e2e_deadline`. `hop_deadline` is the per-segment transmission
/// deadline (the gateway's fwd_deadline on every hop), `period` the
/// minimum inter-arrival time at the publisher.
struct RouteSpec {
  Etag etag = 0;
  int from = 0;
  int to = 0;
  Duration period = Duration::zero();
  Duration hop_deadline = Duration::zero();
  Duration e2e_deadline = Duration::zero();
  int dlc = 8;
  /// End-to-end deadline-miss probability budget (per instance) this
  /// channel promises; absent = no probabilistic promise. Checked by
  /// RTEC-T012 under `rtec_verify --prob`: the hop-composed miss
  /// probability from sched/prob_rta must stay at or below it.
  std::optional<double> miss_target;
  int line = 0;
};

/// Declared local (single-segment) background traffic, for the bandwidth
/// feasibility rules. Reuses the scenario format's stream shape plus the
/// segment it lives on.
struct TopologyStream {
  int segment = 0;
  StreamSpec stream;
};

struct TopologySpec {
  std::vector<SegmentSpec> segments;
  std::vector<LinkSpec> links;
  std::vector<BridgeSpec> bridges;
  std::vector<RouteSpec> routes;
  std::vector<TopologyStream> streams;

  /// Declared segment lookup; nullptr when `id` is not a declared segment.
  [[nodiscard]] const SegmentSpec* segment_by_id(int id) const;
  /// Declared link lookup; nullptr when `id` is not a declared link (or is
  /// declared more than once — duplicates are RTEC-T001 findings).
  [[nodiscard]] const LinkSpec* link_by_id(int id) const;
};

/// Strict syntactic parse of a topology description; reuses CalendarIoError
/// so CLI diagnostics are uniform across all three input formats.
[[nodiscard]] Expected<TopologySpec, CalendarIoError> parse_topology_spec(
    const std::string& text);

/// The verifier's working input: the parsed spec plus the per-segment
/// calendar images the caller resolved (keyed by declared segment id).
/// Segments without an entry are verified structurally only — the
/// bandwidth rules then see an empty reservation calendar.
struct TopologyInput {
  TopologySpec spec;
  std::map<int, CalendarImage> calendars;
};

}  // namespace rtec::analysis
