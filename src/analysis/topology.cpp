#include "analysis/topology.hpp"

#include <array>
#include <limits>
#include <sstream>

#include "util/kv_text.hpp"

namespace rtec::analysis {

namespace {

/// Declared-id cap shared by segment and link directives: topologies are
/// fleet/campus scale (thousands of segments), not arbitrary integers —
/// keeping ids small keeps every adjacency structure densely indexable.
constexpr std::int64_t kMaxDeclaredId = 1'000'000;

/// Duration cap of the text formats (see calendar_io): microsecond keys
/// parse into nanoseconds, so the bound keeps the conversion exact.
constexpr std::int64_t kMaxDurationUs =
    std::numeric_limits<std::int64_t>::max() / 1000;

}  // namespace

const SegmentSpec* TopologySpec::segment_by_id(int id) const {
  for (const SegmentSpec& s : segments)
    if (s.id == id) return &s;
  return nullptr;
}

const LinkSpec* TopologySpec::link_by_id(int id) const {
  const LinkSpec* found = nullptr;
  for (const LinkSpec& l : links) {
    if (l.id != id) continue;
    if (found != nullptr) return nullptr;  // duplicate: RTEC-T001's finding
    found = &l;
  }
  return found;
}

Expected<TopologySpec, CalendarIoError> parse_topology_spec(
    const std::string& text) {
  std::istringstream in{text};
  std::string line;
  int line_no = 0;

  auto fail = [&](std::string msg) {
    return Unexpected{CalendarIoError{line_no, std::move(msg)}};
  };

  static constexpr std::array<std::string_view, 4> kSegmentKeys = {
      "id", "calendar", "precision_ns", "fault_rate"};
  static constexpr std::array<std::string_view, 4> kLinkKeys = {
      "id", "a", "b", "latency_us"};
  static constexpr std::array<std::string_view, 2> kBridgeKeys = {"link",
                                                                  "etag"};
  static constexpr std::array<std::string_view, 8> kRouteKeys = {
      "etag", "from", "to", "period_us", "hop_deadline_us",
      "e2e_deadline_us", "dlc", "miss_target"};
  static constexpr std::array<std::string_view, 8> kStreamKeys = {
      "segment", "class", "node", "etag", "dlc", "period_us", "deadline_us",
      "priority"};

  bool have_header = false;
  TopologySpec spec;

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls{line};
    std::string word;
    if (!(ls >> word)) continue;

    if (word == "topology") {
      if (have_header) return fail("duplicate 'topology' header");
      std::string version;
      if (!(ls >> version) || version != "v1")
        return fail("unsupported topology version");
      std::string extra;
      if (ls >> extra)
        return fail("trailing token '" + extra + "' after header");
      have_header = true;
      continue;
    }
    if (!have_header) return fail("missing 'topology v1' header");

    std::string rest;
    std::getline(ls, rest);

    if (word == "segment") {
      const auto kv = parse_kv_tokens(rest, kSegmentKeys);
      if (!kv) return fail("malformed segment line: " + kv.error());
      SegmentSpec s;
      s.line = line_no;
      const auto id = kv->get_int_in("id", 0, kMaxDeclaredId);
      if (!id) return fail("bad segment: " + id.error());
      s.id = static_cast<int>(*id);
      if (kv->contains("calendar")) {
        const auto cal = kv->get_str("calendar");
        if (!cal) return fail("bad segment: " + cal.error());
        s.calendar = *cal;
      }
      if (kv->contains("precision_ns")) {
        const auto p = kv->get_int_in(
            "precision_ns", 0, std::numeric_limits<std::int64_t>::max());
        if (!p) return fail("bad segment: " + p.error());
        s.precision = Duration::nanoseconds(*p);
      }
      if (kv->contains("fault_rate")) {
        // A certain fault (rate 1) leaves no schedulable channel; keep it
        // describable up to but excluding 1 so RTEC-T012 stays meaningful.
        const auto rate = kv->get_double_in("fault_rate", 0.0, 0.999999);
        if (!rate) return fail("bad segment: " + rate.error());
        s.fault_rate = *rate;
      }
      spec.segments.push_back(std::move(s));
      continue;
    }

    if (word == "link") {
      const auto kv = parse_kv_tokens(rest, kLinkKeys);
      if (!kv) return fail("malformed link line: " + kv.error());
      LinkSpec l;
      l.line = line_no;
      const auto id = kv->get_int_in("id", 0, kMaxDeclaredId);
      if (!id) return fail("bad link: " + id.error());
      l.id = static_cast<int>(*id);
      const auto a = kv->get_int_in("a", 0, kMaxDeclaredId);
      if (!a) return fail("bad link: " + a.error());
      l.a = static_cast<int>(*a);
      const auto b = kv->get_int_in("b", 0, kMaxDeclaredId);
      if (!b) return fail("bad link: " + b.error());
      l.b = static_cast<int>(*b);
      // latency 0 parses fine: a zero forward latency is a *semantic*
      // problem (RTEC-T006 — it stalls the conservative engine), and the
      // verifier must be able to describe it.
      const auto lat = kv->get_int_in("latency_us", 0, kMaxDurationUs);
      if (!lat) return fail("bad link: " + lat.error());
      l.latency = Duration::microseconds(*lat);
      spec.links.push_back(l);
      continue;
    }

    if (word == "bridge") {
      const auto kv = parse_kv_tokens(rest, kBridgeKeys);
      if (!kv) return fail("malformed bridge line: " + kv.error());
      BridgeSpec b;
      b.line = line_no;
      const auto link = kv->get_int_in("link", 0, kMaxDeclaredId);
      if (!link) return fail("bad bridge: " + link.error());
      b.link = static_cast<int>(*link);
      const auto etag = kv->get_int_in("etag", 0, kMaxEtag);
      if (!etag) return fail("bad bridge: " + etag.error());
      b.etag = static_cast<Etag>(*etag);
      spec.bridges.push_back(b);
      continue;
    }

    if (word == "route") {
      const auto kv = parse_kv_tokens(rest, kRouteKeys);
      if (!kv) return fail("malformed route line: " + kv.error());
      RouteSpec r;
      r.line = line_no;
      const auto etag = kv->get_int_in("etag", 0, kMaxEtag);
      if (!etag) return fail("bad route: " + etag.error());
      r.etag = static_cast<Etag>(*etag);
      const auto from = kv->get_int_in("from", 0, kMaxDeclaredId);
      if (!from) return fail("bad route: " + from.error());
      r.from = static_cast<int>(*from);
      const auto to = kv->get_int_in("to", 0, kMaxDeclaredId);
      if (!to) return fail("bad route: " + to.error());
      r.to = static_cast<int>(*to);
      const auto period = kv->get_int_in("period_us", 1, kMaxDurationUs);
      if (!period) return fail("bad route: " + period.error());
      r.period = Duration::microseconds(*period);
      const auto hop = kv->get_int_in("hop_deadline_us", 1, kMaxDurationUs);
      if (!hop) return fail("bad route: " + hop.error());
      r.hop_deadline = Duration::microseconds(*hop);
      const auto e2e = kv->get_int_in("e2e_deadline_us", 1, kMaxDurationUs);
      if (!e2e) return fail("bad route: " + e2e.error());
      r.e2e_deadline = Duration::microseconds(*e2e);
      if (kv->contains("dlc")) {
        const auto dlc = kv->get_int_in("dlc", 0, 8);
        if (!dlc) return fail("bad route: " + dlc.error());
        r.dlc = static_cast<int>(*dlc);
      }
      if (kv->contains("miss_target")) {
        const auto target = kv->get_double_in("miss_target", 0.0, 1.0);
        if (!target) return fail("bad route: " + target.error());
        r.miss_target = *target;
      }
      spec.routes.push_back(r);
      continue;
    }

    if (word == "stream") {
      const auto kv = parse_kv_tokens(rest, kStreamKeys);
      if (!kv) return fail("malformed stream line: " + kv.error());
      const auto segment = kv->get_int_in("segment", 0, kMaxDeclaredId);
      if (!segment) return fail("bad stream: " + segment.error());
      auto s = parse_stream_fields(*kv);
      if (!s) return fail("bad stream: " + s.error());
      s->line = line_no;
      spec.streams.push_back({static_cast<int>(*segment), std::move(*s)});
      continue;
    }

    return fail("unknown directive '" + word + "'");
  }

  if (!have_header) {
    line_no = 0;
    return fail("empty input");
  }
  return spec;
}

}  // namespace rtec::analysis
