#include "analysis/scenario_spec.hpp"

#include <array>
#include <limits>
#include <sstream>

#include "util/kv_text.hpp"

namespace rtec::analysis {

Expected<StreamSpec, std::string> parse_stream_fields(const KvMap& kv) {
  const auto cls = kv.get_str("class");
  if (!cls) return Unexpected{cls.error()};
  StreamSpec s;
  if (*cls == "srt") {
    s.traffic = TrafficClass::kSrt;
  } else if (*cls == "nrt") {
    s.traffic = TrafficClass::kNrt;
  } else {
    return Unexpected{"class must be srt or nrt, got '" + *cls + "'"};
  }
  const auto node = kv.get_int_in("node", 0, kMaxNodeId);
  if (!node) return Unexpected{node.error()};
  s.node = static_cast<NodeId>(*node);
  const auto etag = kv.get_int_in("etag", 0, kMaxEtag);
  if (!etag) return Unexpected{etag.error()};
  s.etag = static_cast<Etag>(*etag);
  if (kv.contains("dlc")) {
    const auto dlc = kv.get_int_in("dlc", 0, 8);
    if (!dlc) return Unexpected{dlc.error()};
    s.dlc = static_cast<int>(*dlc);
  }
  if (s.traffic == TrafficClass::kSrt) {
    const auto period = kv.get_int_in(
        "period_us", 1, std::numeric_limits<std::int64_t>::max() / 1000);
    if (!period) return Unexpected{period.error()};
    s.period = Duration::microseconds(*period);
    s.deadline = s.period;
    if (kv.contains("deadline_us")) {
      const auto deadline = kv.get_int_in(
          "deadline_us", 1, std::numeric_limits<std::int64_t>::max() / 1000);
      if (!deadline) return Unexpected{deadline.error()};
      s.deadline = Duration::microseconds(*deadline);
    }
    if (kv.contains("priority"))
      return Unexpected{std::string{"priority is an NRT field"}};
  } else {
    // Full 8-bit range: a priority outside the NRT partition (or one
    // that could out-arbitrate HRT) is RTEC-S103's finding.
    const auto priority = kv.get_int_in("priority", 0, 255);
    if (!priority) return Unexpected{priority.error()};
    s.priority = static_cast<int>(*priority);
    if (kv.contains("period_us") || kv.contains("deadline_us"))
      return Unexpected{std::string{"period_us/deadline_us are SRT fields"}};
  }
  return s;
}

Expected<ScenarioSpec, CalendarIoError> parse_scenario_spec(
    const std::string& text) {
  std::istringstream in{text};
  std::string line;
  int line_no = 0;

  auto fail = [&](std::string msg) {
    return Unexpected{CalendarIoError{line_no, std::move(msg)}};
  };

  bool have_header = false;
  ScenarioSpec spec;

  static constexpr std::array<std::string_view, 1> kNodeKeys = {"id"};
  static constexpr std::array<std::string_view, 1> kSyncKeys = {"master"};
  static constexpr std::array<std::string_view, 3> kBandKeys = {
      "p_min", "p_max", "slot_us"};
  static constexpr std::array<std::string_view, 7> kStreamKeys = {
      "class", "node", "etag", "dlc", "period_us", "deadline_us", "priority"};

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls{line};
    std::string word;
    if (!(ls >> word)) continue;

    if (word == "scenario") {
      if (have_header) return fail("duplicate 'scenario' header");
      std::string version;
      if (!(ls >> version) || version != "v1")
        return fail("unsupported scenario version");
      std::string extra;
      if (ls >> extra)
        return fail("trailing token '" + extra + "' after header");
      have_header = true;
      continue;
    }
    if (!have_header) return fail("missing 'scenario v1' header");

    std::string rest;
    std::getline(ls, rest);

    if (word == "precision_ns") {
      if (spec.clock_precision)
        return fail("duplicate precision_ns directive");
      std::istringstream vs{rest};
      std::string value;
      if (!(vs >> value)) return fail("missing value for precision_ns");
      std::string extra;
      if (vs >> extra)
        return fail("trailing token '" + extra + "' after precision_ns");
      KvMap one;
      one.values.emplace("precision_ns", value);
      const auto v = one.get_int_in("precision_ns", 0,
                                    std::numeric_limits<std::int64_t>::max());
      if (!v) return fail("bad precision_ns: " + v.error());
      spec.clock_precision = Duration::nanoseconds(*v);
      continue;
    }

    if (word == "sync") {
      if (spec.sync_master) return fail("duplicate sync directive");
      const auto kv = parse_kv_tokens(rest, kSyncKeys);
      if (!kv) return fail("malformed sync line: " + kv.error());
      const auto master = kv->get_int_in("master", 0, kMaxNodeId);
      if (!master) return fail("bad sync: " + master.error());
      spec.sync_master = static_cast<NodeId>(*master);
      spec.sync_line = line_no;
      continue;
    }

    if (word == "srt_band") {
      if (spec.srt_band) return fail("duplicate srt_band directive");
      const auto kv = parse_kv_tokens(rest, kBandKeys);
      if (!kv) return fail("malformed srt_band line: " + kv.error());
      // Full 8-bit range accepted here on purpose: a band that collides
      // with the HRT or NRT partitions is RTEC-S103's finding, not a
      // syntax error.
      const auto p_min = kv->get_int_in("p_min", 0, 255);
      if (!p_min) return fail("bad srt_band: " + p_min.error());
      const auto p_max = kv->get_int_in("p_max", 0, 255);
      if (!p_max) return fail("bad srt_band: " + p_max.error());
      const auto slot_us = kv->get_int_in(
          "slot_us", 0, std::numeric_limits<std::int64_t>::max() / 1000);
      if (!slot_us) return fail("bad srt_band: " + slot_us.error());
      DeadlinePriorityMap::Config band;
      band.p_min = static_cast<Priority>(*p_min);
      band.p_max = static_cast<Priority>(*p_max);
      band.slot_length = Duration::microseconds(*slot_us);
      spec.srt_band = band;
      spec.srt_band_line = line_no;
      continue;
    }

    if (word == "node") {
      const auto kv = parse_kv_tokens(rest, kNodeKeys);
      if (!kv) return fail("malformed node line: " + kv.error());
      const auto id = kv->get_int_in("id", 0, kMaxNodeId);
      if (!id) return fail("bad node: " + id.error());
      spec.nodes.push_back({static_cast<NodeId>(*id), line_no});
      continue;
    }

    if (word == "stream") {
      const auto kv = parse_kv_tokens(rest, kStreamKeys);
      if (!kv) return fail("malformed stream line: " + kv.error());
      auto s = parse_stream_fields(*kv);
      if (!s) return fail("bad stream: " + s.error());
      s->line = line_no;
      spec.streams.push_back(std::move(*s));
      continue;
    }
    return fail("unknown directive '" + word + "'");
  }

  if (!have_header) {
    line_no = 0;
    return fail("empty input");
  }
  return spec;
}

}  // namespace rtec::analysis
