#pragma once

#include <vector>

#include "analysis/report.hpp"
#include "analysis/topology.hpp"
#include "sched/prob_rta.hpp"

/// \file verify.hpp
/// rtec-verify — whole-topology static verifier. PR 1's linter checks one
/// segment's reservation calendar; a production deployment is a *graph* of
/// segments coupled by store-and-forward gateways, and its correctness
/// questions are compositional: can an event circulate forever? can every
/// promised subscriber actually be reached? does forwarded traffic fit in
/// the bandwidth each segment has left after its HRT reservations? and —
/// the paper's admission question lifted to topologies — does the
/// worst-case latency composed hop-by-hop stay inside each channel's
/// end-to-end deadline? All of it is answered offline, from the topology
/// description plus the per-segment calendar images, exactly as the
/// paper's §3.1 argues HRT admission must be.
///
/// Rule catalog (RTEC-T001..T011), severities and the end-to-end bound
/// derivation: docs/static_analysis.md. CLI front-end: tools/rtec_verify.
/// The differential oracle that cross-checks these bounds against the
/// sharded simulator lives in analysis/oracle.hpp.

namespace rtec::analysis {

struct VerifyOptions {
  /// Warning threshold for the utilization rules (RTEC-T007/T008): above
  /// this fraction of the available bandwidth the budget is legal but has
  /// no engineering margin. Errors always fire at > 1.0.
  double warn_utilization = 0.95;
  /// RTEC-T006: a positive forward latency below this floor still executes
  /// correctly but bounds the engine's *per-link* lookahead between the
  /// link's endpoint segments so tightly that their epochs degenerate to
  /// near-serial execution (under per-link horizons the rest of the
  /// topology keeps its own, larger horizons).
  Duration serial_lookahead_floor = Duration::microseconds(10);
  /// Run lint_calendar over every provided per-segment calendar image and
  /// merge its findings (tagged with the segment id). Off = topology rules
  /// only (used by tests that target a single T rule).
  bool per_segment_lint = true;
  /// RTEC-T012: run the convolution-based probabilistic engine
  /// (sched/prob_rta) over every route that declares a miss_target and
  /// error when the hop-composed miss probability exceeds it. Opt-in
  /// (`rtec_verify --prob`) so the default report stays byte-identical
  /// for topologies that carry the new keys.
  bool probabilistic = false;
  /// Numerical policy of the probabilistic engine (pruning/truncation
  /// budgets — both surface in the reported tail epsilon).
  ProbRtaOptions prob;
};

/// Worst-case end-to-end latency bound of one declared route, composed
/// hop-by-hop (docs/static_analysis.md derives it):
///
///   bound = Σ_hops (hop_deadline + Π_segment) + Σ_links forward_latency
///
/// over the unique path the route's bridged-etag forest provides.
struct RouteBound {
  std::size_t route = 0;     ///< index into TopologySpec::routes
  bool computable = false;   ///< path resolved through declared bridges
  Duration bound = Duration::zero();
  std::vector<int> link_ids;     ///< links traversed, in hop order
  std::vector<int> segment_ids;  ///< segments visited, from → to
};

/// Resolves every route's forwarding path and composes its static
/// end-to-end bound. Routes whose path cannot be resolved (structural
/// errors, unreachable destination) come back with computable = false.
[[nodiscard]] std::vector<RouteBound> route_bounds(const TopologyInput& input);

/// Probabilistic analogue of RouteBound: the per-hop transmission-
/// deadline-miss probabilities of one route under each segment's declared
/// fault_rate (sched/prob_rta's conservative busy-window model: worst-case
/// blocker, critical-instant interferers — local SRT streams, every route
/// transiting the segment, and the calendar's reserved share — plus
/// unbounded fault retries truncated at the hop deadline), and their
/// union-bound composition. `tail_epsilon` bounds the probability mass
/// the convolution pruned or truncated; it is *included* in e2e_miss, so
/// the reported number stays a sound upper bound.
struct RouteMiss {
  std::size_t route = 0;      ///< index into TopologySpec::routes
  bool computable = false;    ///< path resolved through declared bridges
  double e2e_miss = 0.0;      ///< 1 − Π (1 − hop_miss), incl. tail_epsilon
  double tail_epsilon = 0.0;  ///< summed pruning/truncation bound
  std::vector<double> hop_miss;  ///< per segment visited, from → to
};

/// Runs the probabilistic engine over every route (independent of any
/// miss_target declarations, so `--prob` can print the numbers even for
/// routes that promise nothing).
[[nodiscard]] std::vector<RouteMiss> route_miss_bounds(
    const TopologyInput& input, const VerifyOptions& options = {});

/// Runs the whole RTEC-T rule catalog (plus, by default, the per-segment
/// calendar lint) over a topology. Findings carry the declared segment id,
/// link id and route index they are about.
[[nodiscard]] LintReport verify_topology(const TopologyInput& input,
                                         const VerifyOptions& options = {});

}  // namespace rtec::analysis
