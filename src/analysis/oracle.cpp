#include "analysis/oracle.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "core/gateway.hpp"
#include "core/scenario.hpp"
#include "core/srtec.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

namespace rtec::analysis {

namespace {

/// Node-id layout inside the oracle scenario (kMaxNodeId = 127 budget):
/// each segment gets a publisher and a subscriber node at 1+2n / 2+2n,
/// each gateway link a node pair at 64+2l / 65+2l.
constexpr int kMaxOracleSegments = 31;
constexpr int kMaxOracleLinks = 31;

NodeId pub_node(int net) { return static_cast<NodeId>(1 + 2 * net); }
NodeId sub_node(int net) { return static_cast<NodeId>(2 + 2 * net); }

/// Per-route measurement state for one seed's run. The publish loop (on
/// the source shard) appends; the subscriber (destination shard) reads —
/// safe because the oracle runs its shards on one thread.
struct RouteRun {
  std::vector<std::int64_t> sent_ns;
  std::uint64_t delivered = 0;
  std::int64_t max_latency_ns = 0;
};

std::vector<std::uint8_t> seq_payload(std::uint32_t seq, int dlc) {
  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(std::max(4, dlc)), 0);
  bytes[0] = static_cast<std::uint8_t>(seq);
  bytes[1] = static_cast<std::uint8_t>(seq >> 8);
  bytes[2] = static_cast<std::uint8_t>(seq >> 16);
  bytes[3] = static_cast<std::uint8_t>(seq >> 24);
  return bytes;
}

std::uint32_t payload_seq(const Event& e) {
  if (e.content.size() < 4) return 0;
  return static_cast<std::uint32_t>(e.content[0]) |
         static_cast<std::uint32_t>(e.content[1]) << 8 |
         static_cast<std::uint32_t>(e.content[2]) << 16 |
         static_cast<std::uint32_t>(e.content[3]) << 24;
}

}  // namespace

OracleResult run_differential_oracle(const TopologyInput& input,
                                     const OracleOptions& options) {
  const TopologySpec& spec = input.spec;
  OracleResult out;

  const auto skip = [&](std::string why) {
    out.skip_reason = std::move(why);
    return out;
  };

  const LintReport static_report = verify_topology(input, options.verify);
  for (const Finding& f : static_report.findings) {
    if (f.rule == Rule::kTopologyConfig || f.rule == Rule::kRoutingCycle ||
        f.rule == Rule::kUnreachableSubscriber)
      return skip("topology has structural findings (" +
                  std::string{rule_code(f.rule)} +
                  ") — nothing sound to simulate");
  }
  if (!input.calendars.empty())
    return skip("oracle simulates the SRT layer only; topology attaches "
                "HRT calendars");
  if (spec.routes.empty()) return skip("no routes to cross-check");
  if (static_cast<int>(spec.segments.size()) > kMaxOracleSegments ||
      static_cast<int>(spec.links.size()) > kMaxOracleLinks)
    return skip("topology exceeds the oracle's node-id budget (" +
                std::to_string(kMaxOracleSegments) + " segments / " +
                std::to_string(kMaxOracleLinks) + " links)");
  for (const LinkSpec& l : spec.links)
    if (l.latency <= Duration::zero())
      return skip("link " + std::to_string(l.id) +
                  " has zero forward latency (RTEC-T006) — the handoff "
                  "channel requires positive lookahead");

  const std::vector<RouteBound> bounds = route_bounds(input);

  std::vector<bool> admitted(spec.routes.size(), true);
  for (const Finding& f : static_report.findings)
    if (f.rule == Rule::kE2eDeadline && f.route >= 0)
      admitted[static_cast<std::size_t>(f.route)] = false;

  // Segment id → dense network index, in declared-id order (the segment
  // ids are part of the format; the Scenario wants 0..n-1).
  std::map<int, int> net_of;
  for (const SegmentSpec& s : spec.segments)
    net_of.emplace(s.id, static_cast<int>(net_of.size()));

  for (const std::uint64_t seed : options.seeds) {
    Scenario::Config cfg;
    cfg.networks = static_cast<int>(net_of.size());
    // One shard per segment: the oracle exercises the same conservative
    // parallel engine the deployment would use. One thread: sequential,
    // deterministic, and the measurement state needs no synchronization
    // (results are bit-identical for any thread count anyway).
    cfg.shards = cfg.networks;
    cfg.threads = 1;
    Scenario scn{cfg};
    TaskPool pool;
    Rng setup_rng{seed};

    for (int net = 0; net < cfg.networks; ++net) {
      scn.add_node(pub_node(net), {}, net);
      scn.add_node(sub_node(net), {}, net);
    }

    std::map<int, Gateway*> gateway_of_link;
    std::vector<std::unique_ptr<Gateway>> gateways;
    for (std::size_t l = 0; l < spec.links.size(); ++l) {
      const LinkSpec& link = spec.links[l];
      Node& a = scn.add_node(static_cast<NodeId>(64 + 2 * l), {},
                             net_of.at(link.a));
      Node& b = scn.add_node(static_cast<NodeId>(65 + 2 * l), {},
                             net_of.at(link.b));
      gateways.push_back(std::make_unique<Gateway>(
          a, b, scn.link_gateway(a, b, link.latency)));
      gateway_of_link[link.id] = gateways.back().get();
    }

    std::vector<std::unique_ptr<Srtec>> stacks;
    const auto make_stack = [&](NodeId id) {
      stacks.push_back(std::make_unique<Srtec>(scn.node(id).middleware()));
      return stacks.back().get();
    };

    std::vector<std::unique_ptr<RouteRun>> runs;
    bool setup_ok = true;
    for (std::size_t r = 0; r < spec.routes.size() && setup_ok; ++r) {
      const RouteSpec& route = spec.routes[r];
      const RouteBound& rb = bounds[r];
      runs.push_back(std::make_unique<RouteRun>());
      RouteRun* run = runs.back().get();

      const Subject subj = subject_of("oracle/route" + std::to_string(r));
      for (const int link_id : rb.link_ids) {
        const Duration expiration =
            std::max(route.e2e_deadline, route.hop_deadline);
        // Transit forwarding is safe here: the oracle only runs after the
        // static report came back free of RTEC-T002 cycle findings.
        if (!gateway_of_link.at(link_id)
                 ->bridge_srt(subj, route.hop_deadline, expiration,
                              /*forward_transit=*/true)) {
          setup_ok = false;
          break;
        }
      }
      if (!setup_ok) break;

      // Generous expiration: a backlogged (overloaded) segment must keep
      // its late events alive long enough for the subscriber to observe
      // the real latency — dropping them would hide exactly the
      // disagreement the oracle is looking for.
      const AttributeList route_attrs{
          attr::Deadline{route.hop_deadline},
          attr::Expiration{std::max(route.e2e_deadline,
                                    route.hop_deadline + route.hop_deadline)}};
      Srtec* pub = make_stack(pub_node(net_of.at(route.from)));
      if (!pub->announce(subj, route_attrs, nullptr)) {
        setup_ok = false;
        break;
      }
      Srtec* sub = make_stack(sub_node(net_of.at(route.to)));
      Simulator* to_sim = &scn.segment_sim(net_of.at(route.to));
      if (!sub->subscribe(subj, {},
                          [sub, to_sim, run] {
                            while (auto e = sub->getEvent()) {
                              const std::uint32_t seq = payload_seq(*e);
                              if (seq >= run->sent_ns.size()) continue;
                              const std::int64_t lat =
                                  to_sim->now().ns() - run->sent_ns[seq];
                              ++run->delivered;
                              run->max_latency_ns =
                                  std::max(run->max_latency_ns, lat);
                            }
                          },
                          nullptr)) {
        setup_ok = false;
        break;
      }

      Simulator* from_sim = &scn.segment_sim(net_of.at(route.from));
      const Duration period = route.period;
      const int dlc = route.dlc;
      auto* loop = pool.make();
      *loop = [pub, from_sim, run, period, dlc, loop] {
        const std::uint32_t seq =
            static_cast<std::uint32_t>(run->sent_ns.size());
        run->sent_ns.push_back(from_sim->now().ns());
        Event e;
        e.content = seq_payload(seq, dlc);
        (void)pub->publish(std::move(e));
        from_sim->schedule_after(period, [loop] { (*loop)(); });
      };
      from_sim->schedule_after(
          Duration::microseconds(setup_rng.uniform_int(100, 3000)),
          [loop] { (*loop)(); });
    }

    // Declared local SRT streams publish too: they are the background load
    // the quantitative rules budgeted for, so the oracle replays them.
    for (std::size_t i = 0; i < spec.streams.size() && setup_ok; ++i) {
      const TopologyStream& ts = spec.streams[i];
      if (ts.stream.traffic != TrafficClass::kSrt) continue;
      const int net = net_of.at(ts.segment);
      const Subject subj = subject_of("oracle/stream" + std::to_string(i));
      Srtec* pub = make_stack(pub_node(net));
      if (!pub->announce(subj, AttributeList{attr::Deadline{ts.stream.deadline}},
                         nullptr)) {
        setup_ok = false;
        break;
      }
      Srtec* sub = make_stack(sub_node(net));
      if (!sub->subscribe(subj, {}, [sub] { while (sub->getEvent()) {} },
                          nullptr)) {
        setup_ok = false;
        break;
      }
      Simulator* sim = &scn.segment_sim(net);
      const Duration period = ts.stream.period;
      const int dlc = ts.stream.dlc;
      auto* loop = pool.make();
      *loop = [pub, sim, period, dlc, loop] {
        Event e;
        e.content = seq_payload(0, dlc);
        (void)pub->publish(std::move(e));
        sim->schedule_after(period, [loop] { (*loop)(); });
      };
      sim->schedule_after(
          Duration::microseconds(setup_rng.uniform_int(100, 3000)),
          [loop] { (*loop)(); });
    }
    if (!setup_ok)
      return skip("oracle scenario setup failed (channel announce/bridge "
                  "rejected) — topology not realizable as declared");

    scn.run_for(options.sim_time);

    for (std::size_t r = 0; r < spec.routes.size(); ++r) {
      RouteObservation ob;
      ob.route = r;
      ob.seed = seed;
      ob.delivered = runs[r]->delivered;
      ob.max_latency = Duration::nanoseconds(runs[r]->max_latency_ns);
      ob.bound = bounds[r].bound;
      ob.statically_admitted = admitted[r];
      out.observations.push_back(ob);
    }
  }
  out.ran = true;

  // Aggregate the verdict per route across seeds; every disagreement is
  // an RTEC-T011 error naming the seed that produced it.
  for (std::size_t r = 0; r < spec.routes.size(); ++r) {
    const RouteSpec& route = spec.routes[r];
    for (const RouteObservation& ob : out.observations) {
      if (ob.route != r) continue;
      const auto add = [&](std::string msg) {
        Finding f;
        f.rule = Rule::kOracleDisagreement;
        f.severity = Severity::kError;
        f.route = static_cast<int>(r);
        f.line = route.line;
        f.message = std::move(msg);
        out.report.add(std::move(f));
      };
      std::ostringstream at;
      at << "seed " << ob.seed << ": ";
      if (ob.max_latency > ob.bound)
        add(at.str() + "observed end-to-end latency " +
            std::to_string(ob.max_latency.ns()) +
            " ns exceeds the composed static bound " +
            std::to_string(ob.bound.ns()) + " ns — the bound is unsound");
      if (ob.statically_admitted && ob.max_latency > route.e2e_deadline)
        add(at.str() + "statically admitted route misses its declared "
                       "deadline in simulation (observed " +
            std::to_string(ob.max_latency.ns()) + " ns > " +
            std::to_string(route.e2e_deadline.ns()) + " ns) — false admission");
      if (ob.delivered == 0)
        add(at.str() +
            "route delivered no events at all — forwarding path dead "
            "although the verifier resolved it");
    }
  }
  return out;
}

}  // namespace rtec::analysis
