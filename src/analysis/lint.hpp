#pragma once

#include <functional>
#include <optional>

#include "analysis/report.hpp"
#include "analysis/scenario_spec.hpp"
#include "sched/calendar_io.hpp"

/// \file lint.hpp
/// Static calendar/scenario verifier — the offline counterpart of the
/// paper's admission test. The HRT timeliness argument (§3.1, Fig. 3) is
/// established *before* the system runs: the reservation calendar, not
/// runtime behaviour, guarantees bounded latency. This module checks
/// those invariants on a raw calendar image (and optionally a scenario
/// description) without running the simulator, and — because redundancy
/// is what makes tampering detectable — cross-checks its own verdict
/// against the Calendar's admission test (rule RTEC-C008: any
/// disagreement between the two implementations is itself a finding).
///
/// Rule catalog, severities and paper rationale: docs/static_analysis.md.
/// CLI front-end: tools/rtec_lint.

namespace rtec::analysis {

struct LintOptions {
  /// Worst-case clock disagreement Π that ΔG_min must dominate (rule
  /// RTEC-C007). Overrides a scenario's precision_ns when both are given;
  /// when neither is known the rule only warns about a zero gap.
  std::optional<Duration> clock_precision;
  /// Reserved-share warning threshold for RTEC-C006 (errors always fire
  /// at > 1.0). The paper argues unused reservations are reclaimed, so a
  /// high share is legal — but above this fraction the SRT/NRT classes
  /// are living off reclamation alone, which deserves a warning.
  double warn_reserved_fraction = 0.95;
  /// Disable the RTEC-C008 admission cross-check (used by the linter's
  /// own differential tests; leave on everywhere else).
  bool cross_check_admission = true;
  /// Fault-injection hook for RTEC-C008: when set, overrides the
  /// admission test's verdict for the given slot index (nullopt = use the
  /// real Calendar::reserve). The linter and the admission test agree by
  /// construction on well-formed input, so the differential tests inject
  /// a faulty oracle here to prove the cross-check actually fires.
  /// Production callers leave this empty.
  std::function<std::optional<bool>(std::size_t)> admission_override;
};

/// Verifies a raw calendar image against the calendar rule set
/// (RTEC-C001..C010). Findings reference image slot indices and source
/// lines when the image came from text.
[[nodiscard]] LintReport lint_calendar(const CalendarImage& image,
                                       const LintOptions& options = {});

/// lint_calendar plus the scenario cross-checks (RTEC-S101..S106):
/// publisher inventory, identifier/priority partition (id_codec,
/// priority_map), traffic-class separation per etag, sync-slot
/// consistency and the SRT EDF feasibility test (sched/srt_analysis).
[[nodiscard]] LintReport lint_scenario(const CalendarImage& image,
                                       const ScenarioSpec& spec,
                                       const LintOptions& options = {});

/// Wraps a parse failure as a one-finding report (RTEC-P001) so CLI/CI
/// consumers see a uniform JSON document for every failure mode.
[[nodiscard]] LintReport parse_failure_report(const CalendarIoError& error);

}  // namespace rtec::analysis
