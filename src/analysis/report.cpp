#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rtec::analysis {

std::string_view rule_code(Rule r) {
  switch (r) {
    case Rule::kParseError: return "RTEC-P001";
    case Rule::kWindowOutsideRound: return "RTEC-C001";
    case Rule::kWindowOverlap: return "RTEC-C002";
    case Rule::kWcttCoverage: return "RTEC-C003";
    case Rule::kPeriodPhase: return "RTEC-C004";
    case Rule::kReservedEtag: return "RTEC-C005";
    case Rule::kOverSubscription: return "RTEC-C006";
    case Rule::kGapBelowPrecision: return "RTEC-C007";
    case Rule::kAdmissionDisagreement: return "RTEC-C008";
    case Rule::kBadConfig: return "RTEC-C009";
    case Rule::kBadSlotField: return "RTEC-C010";
    case Rule::kUnknownPublisher: return "RTEC-S101";
    case Rule::kDuplicateNode: return "RTEC-S102";
    case Rule::kPriorityInversion: return "RTEC-S103";
    case Rule::kEtagClassMixing: return "RTEC-S104";
    case Rule::kSyncSlotMismatch: return "RTEC-S105";
    case Rule::kSrtInfeasible: return "RTEC-S106";
    case Rule::kTopologyConfig: return "RTEC-T001";
    case Rule::kRoutingCycle: return "RTEC-T002";
    case Rule::kUnreachableSubscriber: return "RTEC-T003";
    case Rule::kEtagClash: return "RTEC-T004";
    case Rule::kPrecisionMismatch: return "RTEC-T005";
    case Rule::kSerialLookahead: return "RTEC-T006";
    case Rule::kSegmentOverload: return "RTEC-T007";
    case Rule::kGatewayOverload: return "RTEC-T008";
    case Rule::kE2eDeadline: return "RTEC-T009";
    case Rule::kHopInfeasible: return "RTEC-T010";
    case Rule::kOracleDisagreement: return "RTEC-T011";
    case Rule::kProbE2eMiss: return "RTEC-T012";
  }
  return "RTEC-????";
}

std::string_view rule_name(Rule r) {
  switch (r) {
    case Rule::kParseError: return "parse-error";
    case Rule::kWindowOutsideRound: return "window-outside-round";
    case Rule::kWindowOverlap: return "window-overlap";
    case Rule::kWcttCoverage: return "wctt-coverage";
    case Rule::kPeriodPhase: return "period-phase";
    case Rule::kReservedEtag: return "reserved-etag";
    case Rule::kOverSubscription: return "over-subscription";
    case Rule::kGapBelowPrecision: return "gap-below-precision";
    case Rule::kAdmissionDisagreement: return "admission-disagreement";
    case Rule::kBadConfig: return "bad-config";
    case Rule::kBadSlotField: return "bad-slot-field";
    case Rule::kUnknownPublisher: return "unknown-publisher";
    case Rule::kDuplicateNode: return "duplicate-node";
    case Rule::kPriorityInversion: return "priority-inversion";
    case Rule::kEtagClassMixing: return "etag-class-mixing";
    case Rule::kSyncSlotMismatch: return "sync-slot-mismatch";
    case Rule::kSrtInfeasible: return "srt-infeasible";
    case Rule::kTopologyConfig: return "topology-config";
    case Rule::kRoutingCycle: return "routing-cycle";
    case Rule::kUnreachableSubscriber: return "unreachable-subscriber";
    case Rule::kEtagClash: return "etag-clash";
    case Rule::kPrecisionMismatch: return "precision-mismatch";
    case Rule::kSerialLookahead: return "serial-lookahead";
    case Rule::kSegmentOverload: return "segment-overload";
    case Rule::kGatewayOverload: return "gateway-overload";
    case Rule::kE2eDeadline: return "e2e-deadline";
    case Rule::kHopInfeasible: return "hop-infeasible";
    case Rule::kOracleDisagreement: return "oracle-disagreement";
    case Rule::kProbE2eMiss: return "prob-e2e-miss";
  }
  return "unknown";
}

std::string_view to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

int LintReport::error_count() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::kError;
      }));
}

int LintReport::warning_count() const {
  return static_cast<int>(findings.size()) - error_count();
}

namespace {

/// Minimal JSON string escaping (quotes, backslash, control characters).
void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string report_to_json(const LintReport& report, std::string_view tool) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"" << tool << "\",\n";
  out << "  \"format\": 1,\n";
  out << "  \"counts\": {\"errors\": " << report.error_count()
      << ", \"warnings\": " << report.warning_count() << "},\n";
  out << "  \"verdict\": \"" << (report.has_errors() ? "reject" : "accept")
      << "\",\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"rule\": \"" << rule_code(f.rule) << "\",\n";
    out << "      \"name\": \"" << rule_name(f.rule) << "\",\n";
    out << "      \"severity\": \"" << to_string(f.severity) << "\",\n";
    if (f.slot >= 0) out << "      \"slot\": " << f.slot << ",\n";
    if (f.other_slot >= 0) out << "      \"other_slot\": " << f.other_slot << ",\n";
    if (f.segment >= 0) out << "      \"segment\": " << f.segment << ",\n";
    if (f.link >= 0) out << "      \"link\": " << f.link << ",\n";
    if (f.route >= 0) out << "      \"route\": " << f.route << ",\n";
    if (f.line > 0) out << "      \"line\": " << f.line << ",\n";
    out << "      \"message\": ";
    append_json_string(out, f.message);
    out << "\n    }";
  }
  out << (report.findings.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

std::string report_to_text(const LintReport& report) {
  std::ostringstream out;
  for (const Finding& f : report.findings) {
    if (f.line > 0) out << "line " << f.line << ": ";
    out << to_string(f.severity) << " [" << rule_code(f.rule) << "/"
        << rule_name(f.rule) << "]";
    if (f.slot >= 0) {
      out << " slot " << f.slot;
      if (f.other_slot >= 0) out << " vs " << f.other_slot;
      out << ":";
    }
    if (f.segment >= 0) out << " segment " << f.segment << ":";
    if (f.link >= 0) out << " link " << f.link << ":";
    if (f.route >= 0) out << " route " << f.route << ":";
    out << " " << f.message << "\n";
  }
  out << (report.has_errors() ? "REJECT" : "ACCEPT") << ": "
      << report.error_count() << " error(s), " << report.warning_count()
      << " warning(s)\n";
  return out.str();
}

}  // namespace rtec::analysis
