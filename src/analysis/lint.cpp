#include "analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sched/srt_analysis.hpp"
#include "sched/wctt.hpp"

namespace rtec::analysis {

namespace {

/// Static per-slot facts the rules share.
struct SlotFacts {
  bool fields_ok = false;  ///< dlc/k/etag/node inside the model
  bool period_ok = false;  ///< m >= 1, 0 <= phase < m
  bool window_ok = false;  ///< window inside the round
  bool accepted = false;   ///< the linter's own admission verdict
  std::int64_t ready_ns = 0;
  std::int64_t deadline_ns = 0;
  std::int64_t window_ns = 0;  ///< derived ΔT_wait + WCTT
};

std::string ns_text(std::int64_t ns) { return std::to_string(ns) + " ns"; }

/// Format cap shared with parse_calendar_image: offsets and durations
/// beyond ~11.6 days of nanoseconds are rejected outright so every
/// downstream window computation stays inside 64-bit arithmetic.
constexpr std::int64_t kMaxDurationNs = 1'000'000'000'000'000;

/// RTEC-C009: is the bus/round configuration usable at all? Everything
/// else divides by the bit time or the round length, so a bad config
/// short-circuits the run.
void check_config(const CalendarImage& image, LintReport& report) {
  const auto bad = [&](std::string msg) {
    report.add({Rule::kBadConfig, Severity::kError, -1, -1, 0, std::move(msg)});
  };
  if (image.config.round_length <= Duration::zero() ||
      image.config.round_length.ns() > kMaxDurationNs)
    bad("round length must be positive and at most " +
        ns_text(kMaxDurationNs) + ", got " +
        ns_text(image.config.round_length.ns()));
  if (image.config.gap < Duration::zero() ||
      image.config.gap.ns() > kMaxDurationNs)
    bad("ΔG_min gap must be in [0, " + ns_text(kMaxDurationNs) + "], got " +
        ns_text(image.config.gap.ns()));
  if (image.config.bus.bitrate_bps <= 0)
    bad("bitrate must be positive, got " +
        std::to_string(image.config.bus.bitrate_bps));
  else if (image.config.bus.bitrate_bps > 1'000'000'000)
    bad("bitrate above 1 Gbit/s has a sub-nanosecond bit time the timing "
        "model cannot represent");
}

}  // namespace

LintReport lint_calendar(const CalendarImage& image,
                         const LintOptions& options) {
  LintReport report;

  check_config(image, report);
  if (report.has_errors()) return report;

  const Duration t_wait = max_blocking_time(image.config.bus);
  const std::int64_t round_ns = image.config.round_length.ns();
  const std::int64_t gap_ns = image.config.gap.ns();

  const int n = static_cast<int>(image.slots.size());
  std::vector<SlotFacts> facts(static_cast<std::size_t>(n));

  // --- per-slot field and period/phase validity (C010, C004) ------------
  for (int i = 0; i < n; ++i) {
    const ImageSlot& slot = image.slots[static_cast<std::size_t>(i)];
    const SlotSpec& s = slot.spec;
    SlotFacts& f = facts[static_cast<std::size_t>(i)];

    f.fields_ok = true;
    const auto field_error = [&](std::string msg) {
      f.fields_ok = false;
      report.add({Rule::kBadSlotField, Severity::kError, i, -1, slot.line,
                  std::move(msg)});
    };
    if (s.dlc < 0 || s.dlc > 8)
      field_error("dlc " + std::to_string(s.dlc) +
                  " outside [0, 8] — WCTT undefined");
    if (s.fault.omission_degree < 0 ||
        s.fault.omission_degree > kMaxOmissionDegree)
      field_error("omission degree k " +
                  std::to_string(s.fault.omission_degree) +
                  " outside [0, " + std::to_string(kMaxOmissionDegree) +
                  "] — fault assumption outside the model");
    if (s.lst_offset.ns() < -kMaxDurationNs ||
        s.lst_offset.ns() > kMaxDurationNs)
      field_error("lst offset " + ns_text(s.lst_offset.ns()) +
                  " outside the format's representable range");
    if (s.etag > kMaxEtag)
      field_error("etag " + std::to_string(s.etag) +
                  " outside the 14-bit identifier field");
    if (s.publisher > kMaxNodeId)
      field_error("publisher " + std::to_string(s.publisher) +
                  " outside the 7-bit TxNode field");

    f.period_ok = s.period_rounds >= 1 &&
                  s.period_rounds <= kMaxPeriodRounds && s.phase_round >= 0 &&
                  s.phase_round < s.period_rounds;
    if (!f.period_ok)
      report.add({Rule::kPeriodPhase, Severity::kError, i, -1, slot.line,
                  "period_rounds=" + std::to_string(s.period_rounds) +
                      " phase=" + std::to_string(s.phase_round) +
                      " inconsistent (need 1 <= m <= " +
                      std::to_string(kMaxPeriodRounds) +
                      " and 0 <= phase < m)"});

    if (!f.fields_ok) continue;

    // Derived reservation window (Fig. 3): [LST − ΔT_wait, LST + WCTT].
    const Duration wctt = hrt_wctt(s.dlc, s.fault, image.config.bus);
    f.ready_ns = (s.lst_offset - t_wait).ns();
    f.deadline_ns = (s.lst_offset + wctt).ns();
    f.window_ns = f.deadline_ns - f.ready_ns;

    // --- C001: window must lie inside the round -----------------------
    f.window_ok = f.ready_ns >= 0 && f.deadline_ns <= round_ns;
    if (!f.window_ok)
      report.add({Rule::kWindowOutsideRound, Severity::kError, i, -1,
                  slot.line,
                  "window [" + ns_text(f.ready_ns) + ", " +
                      ns_text(f.deadline_ns) + "] outside the round of " +
                      ns_text(round_ns)});

    // --- C003: declared window vs recomputed ΔT_wait + WCTT -----------
    if (slot.declared_window_ns) {
      const std::int64_t required = f.window_ns;
      if (*slot.declared_window_ns < required)
        report.add({Rule::kWcttCoverage, Severity::kError, i, -1, slot.line,
                    "declared window " + ns_text(*slot.declared_window_ns) +
                        " does not cover ΔT_wait + WCTT(dlc=" +
                        std::to_string(s.dlc) + ", k=" +
                        std::to_string(s.fault.omission_degree) + ") = " +
                        ns_text(required) +
                        " — the image is stale or tampered"});
      else if (*slot.declared_window_ns > required)
        report.add({Rule::kWcttCoverage, Severity::kWarning, i, -1, slot.line,
                    "declared window " + ns_text(*slot.declared_window_ns) +
                        " over-reserves (derived window is " +
                        ns_text(required) + "); safe but stale"});
    }
  }

  // --- C002: pairwise circular separation >= ΔG_min ---------------------
  // Incremental, mirroring the admission test's algorithm shape (each new
  // slot against the previously *accepted* ones) so that the C008
  // cross-check below compares like with like — but with an independently
  // derived arc-separation formula: for windows A (start a, length la) and
  // B (start b, length lb) on the round circle, let d = (b − a) mod R;
  // they are separated by >= G iff d >= la + G and R − d >= lb + G.
  for (int i = 0; i < n; ++i) {
    SlotFacts& f = facts[static_cast<std::size_t>(i)];
    f.accepted = f.fields_ok && f.period_ok && f.window_ok;
    if (!f.accepted) continue;
    for (int j = 0; j < i; ++j) {
      const SlotFacts& o = facts[static_cast<std::size_t>(j)];
      if (!o.accepted) continue;
      std::int64_t d = (o.ready_ns - f.ready_ns) % round_ns;
      if (d < 0) d += round_ns;
      const bool separated = d >= f.window_ns + gap_ns &&
                             round_ns - d >= o.window_ns + gap_ns;
      if (!separated) {
        f.accepted = false;
        report.add({Rule::kWindowOverlap, Severity::kError, i, j,
                    image.slots[static_cast<std::size_t>(i)].line,
                    "windows closer than ΔG_min = " + ns_text(gap_ns) +
                        " under worst-case clock disagreement"});
        break;
      }
    }
  }

  // --- C005: infrastructure etags ---------------------------------------
  int sync_slots = 0;
  for (int i = 0; i < n; ++i) {
    const ImageSlot& slot = image.slots[static_cast<std::size_t>(i)];
    const Etag etag = slot.spec.etag;
    if (etag >= kFirstApplicationEtag) continue;
    if (etag == kSyncRefEtag) {
      ++sync_slots;
      if (sync_slots > 1)
        report.add({Rule::kReservedEtag, Severity::kWarning, i, -1, slot.line,
                    "second slot on the clock-sync etag — one sync round "
                    "per network is the protocol's model"});
    } else {
      report.add({Rule::kReservedEtag, Severity::kWarning, i, -1, slot.line,
                  "etag " + std::to_string(etag) +
                      " is reserved for infrastructure (sync follow-up / "
                      "binding protocol)"});
    }
  }

  // --- C006: bandwidth of the reserved share ----------------------------
  // Accumulated in double: thousands of slots of a capped-but-large round
  // could overflow a 64-bit nanosecond sum, and a share only needs ratio
  // precision anyway.
  double reserved_ns = 0;
  for (const SlotFacts& f : facts)
    if (f.fields_ok) reserved_ns += static_cast<double>(f.window_ns + gap_ns);
  const double fraction = reserved_ns / static_cast<double>(round_ns);
  if (fraction > 1.0) {
    std::ostringstream msg;
    msg << "reserved windows + gaps need " << static_cast<std::int64_t>(reserved_ns)
        << " ns of a " << round_ns << " ns round ("
        << static_cast<int>(fraction * 100) << "%) — no placement exists";
    report.add({Rule::kOverSubscription, Severity::kError, -1, -1, 0,
                msg.str()});
  } else if (fraction > options.warn_reserved_fraction) {
    std::ostringstream msg;
    msg << "reserved share " << static_cast<int>(fraction * 100)
        << "% of the round leaves SRT/NRT traffic to live off reclamation "
           "alone";
    report.add({Rule::kOverSubscription, Severity::kWarning, -1, -1, 0,
                msg.str()});
  }

  // --- C007: ΔG_min vs clock precision ----------------------------------
  if (options.clock_precision) {
    if (image.config.gap < *options.clock_precision)
      report.add({Rule::kGapBelowPrecision, Severity::kError, -1, -1, 0,
                  "ΔG_min = " + ns_text(gap_ns) +
                      " below the worst-case clock disagreement " +
                      ns_text(options.clock_precision->ns()) +
                      " — adjacent slot owners can overlap on the wire"});
  } else if (image.config.gap == Duration::zero()) {
    report.add({Rule::kGapBelowPrecision, Severity::kWarning, -1, -1, 0,
                "ΔG_min = 0: correct only with perfectly agreeing clocks; "
                "declare precision_ns in a scenario to verify"});
  }

  // --- C008: differential check against the Calendar admission test -----
  if (options.cross_check_admission) {
    Calendar calendar{image.config};
    for (int i = 0; i < n; ++i) {
      const ImageSlot& slot = image.slots[static_cast<std::size_t>(i)];
      bool admitted = calendar.reserve(slot.spec).has_value();
      if (options.admission_override)
        if (const auto injected =
                options.admission_override(static_cast<std::size_t>(i)))
          admitted = *injected;
      const bool lint_ok = facts[static_cast<std::size_t>(i)].accepted;
      if (admitted != lint_ok)
        report.add(
            {Rule::kAdmissionDisagreement, Severity::kError, i, -1, slot.line,
             std::string{"admission test "} +
                 (admitted ? "accepts" : "rejects") +
                 " this slot but the linter " +
                 (lint_ok ? "accepts" : "rejects") +
                 " it — one of the two implementations is wrong"});
    }
  }

  return report;
}

LintReport lint_scenario(const CalendarImage& image, const ScenarioSpec& spec,
                         const LintOptions& options) {
  LintOptions merged = options;
  if (!merged.clock_precision && spec.clock_precision)
    merged.clock_precision = spec.clock_precision;
  LintReport report = lint_calendar(image, merged);

  // --- S102: node inventory must be duplicate-free ----------------------
  std::set<NodeId> nodes;
  for (const DeclaredNode& node : spec.nodes) {
    if (!nodes.insert(node.id).second)
      report.add({Rule::kDuplicateNode, Severity::kError, -1, -1, node.line,
                  "node id " + std::to_string(node.id) + " declared twice"});
  }

  // --- S101: every publisher / stream sender must be a declared node ----
  // (skipped when the scenario omits its node inventory).
  if (!nodes.empty()) {
    for (std::size_t i = 0; i < image.slots.size(); ++i) {
      const ImageSlot& slot = image.slots[i];
      if (!nodes.contains(slot.spec.publisher))
        report.add({Rule::kUnknownPublisher, Severity::kError,
                    static_cast<int>(i), -1, slot.line,
                    "slot publisher node " +
                        std::to_string(slot.spec.publisher) +
                        " is not declared in the scenario"});
    }
    for (const StreamSpec& stream : spec.streams) {
      if (!nodes.contains(stream.node))
        report.add({Rule::kUnknownPublisher, Severity::kError, -1, -1,
                    stream.line,
                    "stream sender node " + std::to_string(stream.node) +
                        " is not declared in the scenario"});
    }
  }

  // --- S103: priority partition / HRT out-arbitration -------------------
  // First the partition itself (paper §3.3: 0 = HRT exclusive,
  // P_HRT < P_SRT < P_NRT)...
  const Priority srt_p_min =
      spec.srt_band ? spec.srt_band->p_min : kSrtPriorityMin;
  if (spec.srt_band) {
    const DeadlinePriorityMap::Config& band = *spec.srt_band;
    const auto band_error = [&](std::string msg) {
      report.add({Rule::kPriorityInversion, Severity::kError, -1, -1,
                  spec.srt_band_line, std::move(msg)});
    };
    if (band.p_min <= kHrtPriority)
      band_error("SRT band starts at priority " +
                 std::to_string(band.p_min) +
                 " — priority 0 is exclusively HRT, an SRT frame could win "
                 "arbitration against a pending HRT message");
    if (band.p_max < band.p_min)
      band_error("SRT band empty (p_max " + std::to_string(band.p_max) +
                 " < p_min " + std::to_string(band.p_min) + ")");
    else if (band.p_max >= kNrtPriorityMin)
      band_error("SRT band reaches into the NRT partition (p_max " +
                 std::to_string(band.p_max) + " >= " +
                 std::to_string(kNrtPriorityMin) + ")");
    if (band.slot_length <= Duration::zero())
      band_error("priority slot length Δt_p must be positive");
  }
  for (const StreamSpec& stream : spec.streams) {
    if (stream.traffic != TrafficClass::kNrt) continue;
    if (stream.priority < kNrtPriorityMin || stream.priority > kNrtPriorityMax)
      report.add({Rule::kPriorityInversion, Severity::kError, -1, -1,
                  stream.line,
                  "NRT stream priority " + std::to_string(stream.priority) +
                      " outside the NRT partition [" +
                      std::to_string(kNrtPriorityMin) + ", " +
                      std::to_string(kNrtPriorityMax) + "]"});
  }
  // ...then the encoded-identifier check: the most urgent identifier any
  // declared stream can carry must lose arbitration (compare numerically
  // higher) against every HRT slot identifier. Redundant with the
  // partition checks today — and exactly that redundancy catches a future
  // id_codec layout change that stops making priority the dominant bits.
  for (const StreamSpec& stream : spec.streams) {
    const bool partition_ok =
        stream.traffic == TrafficClass::kSrt
            ? srt_p_min > kHrtPriority
            : stream.priority >= kNrtPriorityMin &&
                  stream.priority <= kNrtPriorityMax;
    if (!partition_ok) continue;  // already reported above
    const Priority most_urgent =
        stream.traffic == TrafficClass::kSrt
            ? srt_p_min
            : static_cast<Priority>(stream.priority);
    const std::uint32_t stream_id =
        encode_can_id({most_urgent, stream.node, stream.etag});
    for (std::size_t i = 0; i < image.slots.size(); ++i) {
      const ImageSlot& slot = image.slots[i];
      if (slot.spec.etag > kMaxEtag || slot.spec.publisher > kMaxNodeId)
        continue;  // RTEC-C010 already reported; id undefined
      const std::uint32_t hrt_id = encode_can_id(
          {kHrtPriority, slot.spec.publisher, slot.spec.etag});
      if (stream_id <= hrt_id)
        report.add({Rule::kPriorityInversion, Severity::kError,
                    static_cast<int>(i), -1, stream.line,
                    "stream identifier 0x" +
                        [](std::uint32_t v) {
                          std::ostringstream hex;
                          hex << std::hex << v;
                          return hex.str();
                        }(stream_id) +
                        " would win arbitration against this HRT slot"});
    }
  }

  // --- S104: one etag, one traffic class --------------------------------
  std::set<Etag> hrt_etags;
  for (const ImageSlot& slot : image.slots) hrt_etags.insert(slot.spec.etag);
  for (const StreamSpec& stream : spec.streams) {
    if (hrt_etags.contains(stream.etag))
      report.add({Rule::kEtagClassMixing, Severity::kError, -1, -1,
                  stream.line,
                  "etag " + std::to_string(stream.etag) +
                      " carries both an HRT reservation and " +
                      (stream.traffic == TrafficClass::kSrt ? "an SRT"
                                                            : "an NRT") +
                      " stream — subscribers cannot tell the guarantees "
                      "apart (hardware filters match the etag only)"});
    else if (stream.etag < kFirstApplicationEtag)
      report.add({Rule::kEtagClassMixing, Severity::kWarning, -1, -1,
                  stream.line,
                  "stream uses infrastructure etag " +
                      std::to_string(stream.etag)});
  }

  // --- S105: sync declaration vs sync slot ------------------------------
  int sync_slot = -1;
  for (std::size_t i = 0; i < image.slots.size(); ++i)
    if (image.slots[i].spec.etag == kSyncRefEtag) {
      sync_slot = static_cast<int>(i);
      break;
    }
  if (spec.sync_master) {
    if (sync_slot < 0)
      report.add({Rule::kSyncSlotMismatch, Severity::kError, -1, -1,
                  spec.sync_line,
                  "scenario declares sync master node " +
                      std::to_string(*spec.sync_master) +
                      " but the calendar reserves no sync slot (etag 0)"});
    else if (image.slots[static_cast<std::size_t>(sync_slot)].spec.publisher !=
             *spec.sync_master)
      report.add(
          {Rule::kSyncSlotMismatch, Severity::kError, sync_slot, -1,
           image.slots[static_cast<std::size_t>(sync_slot)].line,
           "sync slot publisher node " +
               std::to_string(
                   image.slots[static_cast<std::size_t>(sync_slot)]
                       .spec.publisher) +
               " is not the declared sync master node " +
               std::to_string(*spec.sync_master)});
  } else if (sync_slot >= 0) {
    report.add({Rule::kSyncSlotMismatch, Severity::kWarning, sync_slot, -1,
                image.slots[static_cast<std::size_t>(sync_slot)].line,
                "calendar reserves a sync slot but the scenario declares no "
                "sync master"});
  }

  // --- S106: SRT EDF feasibility under this calendar --------------------
  // Only meaningful when the calendar itself is clean (the test needs an
  // admitted Calendar). The demand-bound test is sufficient, not
  // necessary, so a rejection is a warning.
  const bool have_srt = std::any_of(
      spec.streams.begin(), spec.streams.end(), [](const StreamSpec& s) {
        return s.traffic == TrafficClass::kSrt;
      });
  if (have_srt && !report.has_errors()) {
    Calendar calendar{image.config};
    for (const ImageSlot& slot : image.slots)
      (void)calendar.reserve(slot.spec);
    SrtAnalysisInput input;
    input.bus = image.config.bus;
    input.calendar = &calendar;
    if (spec.srt_band) input.priority_slot = spec.srt_band->slot_length;
    for (const StreamSpec& stream : spec.streams) {
      if (stream.traffic != TrafficClass::kSrt) continue;
      SrtStreamSpec s;
      s.id = static_cast<int>(input.streams.size());
      s.period = stream.period;
      s.deadline = stream.deadline;
      s.dlc = stream.dlc;
      input.streams.push_back(s);
    }
    if (const auto verdict = srt_edf_feasibility(input))
      report.add({Rule::kSrtInfeasible, Severity::kWarning, -1, -1, 0,
                  "declared SRT set fails the (sufficient) EDF "
                  "demand-bound test: " +
                      verdict->detail});
  }

  return report;
}

LintReport parse_failure_report(const CalendarIoError& error) {
  LintReport report;
  report.add({Rule::kParseError, Severity::kError, -1, -1, error.line,
              error.message});
  return report;
}

}  // namespace rtec::analysis
