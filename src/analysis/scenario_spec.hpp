#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/calendar_io.hpp"
#include "sched/id_codec.hpp"
#include "sched/priority_map.hpp"
#include "util/kv_text.hpp"
#include "util/time_types.hpp"

/// \file scenario_spec.hpp
/// Declarative scenario description for the static verifier: the facts a
/// deployment knows offline that a calendar image alone cannot carry —
/// which nodes exist, which node is the sync master, the measured
/// worst-case clock disagreement, the SRT deadline→priority band layout
/// (paper §3.4) and the declared SRT/NRT traffic. lint_scenario()
/// cross-checks a calendar image against this description.
///
/// Text format (one directive per line, `#` starts a comment):
///
///   scenario v1
///   precision_ns 33000                  # measured worst clock disagreement
///   sync master=0
///   srt_band p_min=1 p_max=250 slot_us=160
///   node id=0
///   node id=1
///   stream class=srt node=1 etag=20 dlc=8 period_us=5000 deadline_us=5000
///   stream class=nrt node=1 etag=30 dlc=8 priority=251
///
/// Like the calendar image format, parsing is strict: unknown directives
/// or keys, duplicates of singleton directives and malformed values are
/// hard errors. Semantic problems (duplicate node ids, priority bands
/// that break HRT exclusivity) parse fine and are reported by the
/// *linter* with a stable rule ID — the parser's job is syntax only.

namespace rtec::analysis {

/// One declared SRT or NRT stream.
struct StreamSpec {
  TrafficClass traffic = TrafficClass::kSrt;
  NodeId node = 0;
  Etag etag = 0;
  int dlc = 8;
  /// SRT: minimum inter-arrival / relative transmission deadline.
  Duration period = Duration::zero();
  Duration deadline = Duration::zero();
  /// NRT: fixed application priority (paper §3.3: 251..255).
  int priority = 0;
  int line = 0;
};

struct DeclaredNode {
  NodeId id = 0;
  int line = 0;
};

struct ScenarioSpec {
  std::vector<DeclaredNode> nodes;
  std::vector<StreamSpec> streams;
  /// srt_band directive; nullopt when the scenario does not describe its
  /// SRT layer (band checks are skipped, the defaults of §3.3 assumed).
  std::optional<DeadlinePriorityMap::Config> srt_band;
  int srt_band_line = 0;
  std::optional<NodeId> sync_master;
  int sync_line = 0;
  /// Measured worst-case clock disagreement (precision Π) that ΔG_min
  /// must dominate; feeds lint rule RTEC-C007.
  std::optional<Duration> clock_precision;
};

/// Strict parse of the scenario text format; reuses CalendarIoError so
/// CLI diagnostics are uniform across both input files.
[[nodiscard]] Expected<ScenarioSpec, CalendarIoError> parse_scenario_spec(
    const std::string& text);

/// Parses the stream fields (class/node/etag/dlc plus the class-specific
/// timing/priority keys) of one already-tokenized `stream` directive.
/// Shared between the scenario and topology formats; extra keys the
/// caller's format adds (e.g. topology's segment=) are ignored here.
[[nodiscard]] Expected<StreamSpec, std::string> parse_stream_fields(
    const KvMap& kv);

}  // namespace rtec::analysis
