#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file report.hpp
/// Finding/report types of the static calendar verifier (lint.hpp) and
/// their two renderings: a human diagnostic listing and a stable,
/// machine-readable JSON document (golden-tested; consumed by CI and by
/// any tool that wants to gate on lint verdicts without parsing prose).

namespace rtec::analysis {

/// Stable identities of every check the verifier performs. Codes are
/// append-only: a released rule ID never changes meaning (tooling and CI
/// gates key on them). Catalog and paper rationale: docs/static_analysis.md.
enum class Rule {
  kParseError,           ///< RTEC-P001 image/scenario text does not parse
  kWindowOutsideRound,   ///< RTEC-C001 ready < 0 or deadline > round
  kWindowOverlap,        ///< RTEC-C002 window separation below ΔG_min
  kWcttCoverage,         ///< RTEC-C003 declared window vs ΔT_wait + WCTT
  kPeriodPhase,          ///< RTEC-C004 period_rounds/phase_round inconsistent
  kReservedEtag,         ///< RTEC-C005 slot on an infrastructure etag
  kOverSubscription,     ///< RTEC-C006 reserved windows + gaps exceed round
  kGapBelowPrecision,    ///< RTEC-C007 ΔG_min below clock disagreement
  kAdmissionDisagreement,///< RTEC-C008 linter vs admission test verdict
  kBadConfig,            ///< RTEC-C009 round/gap/bitrate unusable
  kBadSlotField,         ///< RTEC-C010 dlc/k/etag/node outside the model
  kUnknownPublisher,     ///< RTEC-S101 slot publisher not a declared node
  kDuplicateNode,        ///< RTEC-S102 node id declared twice
  kPriorityInversion,    ///< RTEC-S103 SRT/NRT id can out-arbitrate HRT
  kEtagClassMixing,      ///< RTEC-S104 one etag bound to two traffic classes
  kSyncSlotMismatch,     ///< RTEC-S105 sync declaration vs sync slot
  kSrtInfeasible,        ///< RTEC-S106 declared SRT set fails the EDF test
  kTopologyConfig,       ///< RTEC-T001 malformed gateway graph structure
  kRoutingCycle,         ///< RTEC-T002 bridged etag forms a forwarding loop
  kUnreachableSubscriber,///< RTEC-T003 route destination not reachable
  kEtagClash,            ///< RTEC-T004 cross-segment event-tag collision
  kPrecisionMismatch,    ///< RTEC-T005 clock precision inconsistent on a link
  kSerialLookahead,      ///< RTEC-T006 forward latency collapses lookahead
  kSegmentOverload,      ///< RTEC-T007 per-segment bandwidth infeasible
  kGatewayOverload,      ///< RTEC-T008 per-direction forwarded demand too high
  kE2eDeadline,          ///< RTEC-T009 composed worst-case bound > deadline
  kHopInfeasible,        ///< RTEC-T010 per-segment EDF test fails composed set
  kOracleDisagreement,   ///< RTEC-T011 simulated run contradicts the verifier
  kProbE2eMiss,          ///< RTEC-T012 composed miss probability > target
};

/// "RTEC-C001"-style stable code.
[[nodiscard]] std::string_view rule_code(Rule r);
/// Short kebab-case rule name ("window-overlap").
[[nodiscard]] std::string_view rule_name(Rule r);

enum class Severity { kWarning, kError };

[[nodiscard]] std::string_view to_string(Severity s);

struct Finding {
  Rule rule{};
  Severity severity = Severity::kError;
  int slot = -1;        ///< calendar slot index the finding is about
  int other_slot = -1;  ///< second slot for pairwise rules (overlap)
  int line = 0;         ///< source line in the image/scenario/topology text
  std::string message;
  /// Topology coordinates (rtec-verify, RTEC-T rules): declared segment id,
  /// link id and route index the finding is about; -1 = not applicable.
  /// Calendar/scenario findings leave all three unset, so the rtec-lint
  /// JSON document is byte-identical to the pre-T-series format.
  int segment = -1;
  int link = -1;
  int route = -1;
};

struct LintReport {
  std::vector<Finding> findings;

  [[nodiscard]] int error_count() const;
  [[nodiscard]] int warning_count() const;
  [[nodiscard]] bool has_errors() const { return error_count() > 0; }

  void add(Finding f) { findings.push_back(std::move(f)); }
};

/// Stable JSON rendering (2-space indent, fixed key order, findings in
/// emission order). `slot`/`other_slot`/`segment`/`link`/`route` are
/// omitted when negative, `line` when 0, so purely structural findings
/// stay compact. `tool` names the producing front-end ("rtec-lint",
/// "rtec-verify") — both emit the same `"format": 1` document shape.
[[nodiscard]] std::string report_to_json(const LintReport& report,
                                         std::string_view tool = "rtec-lint");

/// Human rendering: one "line N: severity [CODE/name] message" per
/// finding plus a final verdict line.
[[nodiscard]] std::string report_to_text(const LintReport& report);

}  // namespace rtec::analysis
