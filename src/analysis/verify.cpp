#include "analysis/verify.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "analysis/lint.hpp"
#include "canbus/frame.hpp"
#include "sched/srt_analysis.hpp"
#include "sched/wctt.hpp"

namespace rtec::analysis {

namespace {

std::string ns_text(std::int64_t ns) { return std::to_string(ns) + " ns"; }

std::string pct_text(double fraction) {
  std::ostringstream out;
  out << static_cast<int>(fraction * 100) << "%";
  return out.str();
}

/// Structurally resolved topology: the subset of the declaration the graph
/// rules can trust. Built silently — verify_topology re-derives every
/// exclusion as an RTEC-T001 finding; route_bounds() only needs the facts.
struct Resolved {
  std::set<int> segments;                 ///< declared ids, duplicates once
  std::vector<const LinkSpec*> links;     ///< unique id, valid distinct endpoints
  std::map<Etag, std::vector<const LinkSpec*>> edges;  ///< per bridged etag
};

Resolved resolve(const TopologySpec& spec) {
  Resolved r;
  for (const SegmentSpec& s : spec.segments) r.segments.insert(s.id);

  std::map<int, int> link_decls;
  for (const LinkSpec& l : spec.links) ++link_decls[l.id];
  for (const LinkSpec& l : spec.links) {
    if (link_decls[l.id] != 1) continue;
    if (l.a == l.b) continue;
    if (!r.segments.contains(l.a) || !r.segments.contains(l.b)) continue;
    r.links.push_back(&l);
  }

  std::set<std::pair<int, Etag>> seen_bridges;
  for (const BridgeSpec& b : spec.bridges) {
    if (!seen_bridges.insert({b.link, b.etag}).second) continue;
    const auto it = std::find_if(
        r.links.begin(), r.links.end(),
        [&](const LinkSpec* l) { return l->id == b.link; });
    if (it == r.links.end()) continue;
    r.edges[b.etag].push_back(*it);
  }
  return r;
}

/// Worst-case wire time of one stream/route frame on a segment's bus (the
/// identifiers of sched/id_codec are 29-bit, so frames are extended).
Duration frame_cost(int dlc, const BusConfig& bus) {
  return worst_case_frame_duration(dlc, /*extended=*/true, bus);
}

/// The calendar-image facts the quantitative rules need. nullopt when the
/// image's config is unusable (RTEC-C009 territory — the per-segment lint
/// reports it; the bandwidth rules then stay silent rather than divide by
/// a zero bit time).
struct SegmentBudget {
  BusConfig bus;
  Duration round = Duration::zero();   ///< zero = no calendar provided
  double hrt_fraction = 0.0;           ///< reserved windows + gaps / round
};

std::optional<SegmentBudget> segment_budget(const TopologyInput& input,
                                            int segment_id) {
  SegmentBudget budget;
  const auto it = input.calendars.find(segment_id);
  if (it == input.calendars.end()) return budget;  // defaults: no HRT share

  const CalendarImage& image = it->second;
  if (image.config.round_length <= Duration::zero() ||
      image.config.bus.bitrate_bps <= 0 ||
      image.config.bus.bitrate_bps > 1'000'000'000)
    return std::nullopt;

  budget.bus = image.config.bus;
  budget.round = image.config.round_length;
  const Duration t_wait = max_blocking_time(image.config.bus);
  double reserved_ns = 0;
  for (const ImageSlot& slot : image.slots) {
    const SlotSpec& s = slot.spec;
    if (s.dlc < 0 || s.dlc > 8 || s.fault.omission_degree < 0 ||
        s.fault.omission_degree > kMaxOmissionDegree)
      continue;  // RTEC-C010: window undefined, lint reports it
    const Duration window = t_wait + hrt_wctt(s.dlc, s.fault, image.config.bus);
    reserved_ns += static_cast<double>((window + image.config.gap).ns());
  }
  budget.hrt_fraction =
      reserved_ns / static_cast<double>(image.config.round_length.ns());
  return budget;
}

Duration precision_of(const TopologySpec& spec, int segment_id) {
  const SegmentSpec* s = spec.segment_by_id(segment_id);
  return (s != nullptr && s->precision) ? *s->precision : Duration::zero();
}

/// BFS through one etag's bridge edges; returns the hop path from → to as
/// (segment ids visited, link specs traversed), or nullopt if unreachable.
struct Path {
  std::vector<int> segments;
  std::vector<const LinkSpec*> links;
};

std::optional<Path> find_path(const Resolved& r, Etag etag, int from, int to) {
  if (!r.segments.contains(from) || !r.segments.contains(to) || from == to)
    return std::nullopt;
  const auto edges_it = r.edges.find(etag);
  if (edges_it == r.edges.end()) return std::nullopt;

  std::map<int, std::pair<int, const LinkSpec*>> parent;  // seg -> (prev, via)
  std::deque<int> frontier{from};
  parent[from] = {from, nullptr};
  while (!frontier.empty()) {
    const int seg = frontier.front();
    frontier.pop_front();
    if (seg == to) break;
    for (const LinkSpec* l : edges_it->second) {
      const int next = l->a == seg ? l->b : (l->b == seg ? l->a : seg);
      if (next == seg || parent.contains(next)) continue;
      parent[next] = {seg, l};
      frontier.push_back(next);
    }
  }
  if (!parent.contains(to)) return std::nullopt;

  Path path;
  for (int seg = to; seg != from; seg = parent[seg].first) {
    path.segments.push_back(seg);
    path.links.push_back(parent[seg].second);
  }
  path.segments.push_back(from);
  std::reverse(path.segments.begin(), path.segments.end());
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

RouteBound compose_bound(const TopologyInput& input, const Resolved& r,
                         std::size_t route_index) {
  const RouteSpec& route = input.spec.routes[route_index];
  RouteBound out;
  out.route = route_index;
  const auto path = find_path(r, route.etag, route.from, route.to);
  if (!path) return out;

  // docs/static_analysis.md, "End-to-end bound": on every segment of the
  // path the event is (re-)published with transmission deadline
  // hop_deadline on a local clock that may disagree with its segment's
  // peers by up to Π; every gateway hop then adds its deterministic
  // store-and-forward latency exactly.
  Duration bound = Duration::zero();
  for (const int seg : path->segments) {
    bound += route.hop_deadline + precision_of(input.spec, seg);
    out.segment_ids.push_back(seg);
  }
  for (const LinkSpec* l : path->links) {
    bound += l->latency;
    out.link_ids.push_back(l->id);
  }
  out.bound = bound;
  out.computable = true;
  return out;
}

}  // namespace

std::vector<RouteBound> route_bounds(const TopologyInput& input) {
  const Resolved r = resolve(input.spec);
  std::vector<RouteBound> bounds;
  bounds.reserve(input.spec.routes.size());
  for (std::size_t i = 0; i < input.spec.routes.size(); ++i)
    bounds.push_back(compose_bound(input, r, i));
  return bounds;
}

std::vector<RouteMiss> route_miss_bounds(const TopologyInput& input,
                                         const VerifyOptions& options) {
  const TopologySpec& spec = input.spec;
  const Resolved resolved = resolve(spec);

  std::vector<std::optional<Path>> paths;
  paths.reserve(spec.routes.size());
  for (const RouteSpec& route : spec.routes)
    paths.push_back(find_path(resolved, route.etag, route.from, route.to));

  std::map<int, std::optional<SegmentBudget>> budgets;
  for (const int seg : resolved.segments)
    budgets[seg] = segment_budget(input, seg);

  std::vector<RouteMiss> out;
  out.reserve(spec.routes.size());
  for (std::size_t i = 0; i < spec.routes.size(); ++i) {
    RouteMiss rm;
    rm.route = i;
    if (!paths[i]) {
      out.push_back(std::move(rm));
      continue;
    }
    rm.computable = true;
    const RouteSpec& route = spec.routes[i];
    for (const int seg : paths[i]->segments) {
      const auto& budget = budgets[seg];
      const BusConfig bus = budget ? budget->bus : BusConfig{};
      const SegmentSpec* sspec = spec.segment_by_id(seg);

      HopQuery query;
      query.frame_bits = worst_case_wire_bits(route.dlc, /*extended=*/true);
      query.blocking_bits = duration_to_bits(max_blocking_time(bus), bus);
      query.deadline_bits = duration_to_bits(route.hop_deadline, bus);
      query.faults.p = sspec != nullptr ? sspec->fault_rate : 0.0;

      // Competitors under the conservative model: every declared local SRT
      // stream, every other route transiting this segment, and the HRT
      // calendar's reserved share (one worst-case burst per round).
      for (const TopologyStream& ts : spec.streams) {
        if (ts.segment != seg || ts.stream.traffic != TrafficClass::kSrt)
          continue;
        if (ts.stream.period <= Duration::zero()) continue;
        query.interferers.push_back(
            {worst_case_wire_bits(ts.stream.dlc, /*extended=*/true),
             duration_to_bits(ts.stream.period, bus)});
      }
      for (std::size_t j = 0; j < spec.routes.size(); ++j) {
        if (j == i || !paths[j]) continue;
        const auto& other_segs = paths[j]->segments;
        if (std::find(other_segs.begin(), other_segs.end(), seg) ==
            other_segs.end())
          continue;
        query.interferers.push_back(
            {worst_case_wire_bits(spec.routes[j].dlc, /*extended=*/true),
             duration_to_bits(spec.routes[j].period, bus)});
      }
      if (budget && budget->round > Duration::zero() &&
          budget->hrt_fraction > 0.0) {
        const auto round_bits = duration_to_bits(budget->round, bus);
        const double share =
            std::min(1.0, budget->hrt_fraction) * static_cast<double>(round_bits);
        query.interferers.push_back(
            {static_cast<int>(std::min<double>(share + 1.0, 1e9)), round_bits});
      }

      const ResponseDistribution hop =
          hop_response_distribution(query, options.prob);
      rm.hop_miss.push_back(hop.miss_probability);
      rm.tail_epsilon += hop.tail_epsilon;
    }
    rm.e2e_miss = compose_route_miss(rm.hop_miss);
    out.push_back(std::move(rm));
  }
  return out;
}

LintReport verify_topology(const TopologyInput& input,
                           const VerifyOptions& options) {
  const TopologySpec& spec = input.spec;
  LintReport report;

  const auto add = [&](Rule rule, Severity severity, std::string msg,
                       int segment = -1, int link = -1, int route = -1,
                       int line = 0) {
    Finding f;
    f.rule = rule;
    f.severity = severity;
    f.message = std::move(msg);
    f.segment = segment;
    f.link = link;
    f.route = route;
    f.line = line;
    report.add(std::move(f));
  };

  // --- T001: structural validity of the declaration ---------------------
  if (spec.segments.empty())
    add(Rule::kTopologyConfig, Severity::kError,
        "topology declares no segments");
  std::set<int> seg_ids;
  for (const SegmentSpec& s : spec.segments) {
    if (!seg_ids.insert(s.id).second)
      add(Rule::kTopologyConfig, Severity::kError,
          "segment id " + std::to_string(s.id) + " declared twice", s.id, -1,
          -1, s.line);
  }
  std::map<int, int> link_decls;
  for (const LinkSpec& l : spec.links) ++link_decls[l.id];
  std::set<int> dup_links_reported;
  for (const LinkSpec& l : spec.links) {
    if (link_decls[l.id] > 1 && dup_links_reported.insert(l.id).second)
      add(Rule::kTopologyConfig, Severity::kError,
          "link id " + std::to_string(l.id) + " declared " +
              std::to_string(link_decls[l.id]) + " times",
          -1, l.id, -1, l.line);
    if (l.a == l.b)
      add(Rule::kTopologyConfig, Severity::kError,
          "link connects segment " + std::to_string(l.a) + " to itself", l.a,
          l.id, -1, l.line);
    for (const int end : {l.a, l.b})
      if (!seg_ids.contains(end))
        add(Rule::kTopologyConfig, Severity::kError,
            "link endpoint references undeclared segment " +
                std::to_string(end),
            end, l.id, -1, l.line);
  }
  std::set<std::pair<int, Etag>> seen_bridges;
  for (const BridgeSpec& b : spec.bridges) {
    if (spec.link_by_id(b.link) == nullptr && link_decls[b.link] <= 1)
      add(Rule::kTopologyConfig, Severity::kError,
          "bridge references undeclared link " + std::to_string(b.link), -1,
          b.link, -1, b.line);
    if (!seen_bridges.insert({b.link, b.etag}).second)
      add(Rule::kTopologyConfig, Severity::kError,
          "etag " + std::to_string(b.etag) + " bridged twice on link " +
              std::to_string(b.link) +
              " — the gateway would forward every event twice",
          -1, b.link, -1, b.line);
  }
  for (std::size_t i = 0; i < spec.routes.size(); ++i) {
    const RouteSpec& route = spec.routes[i];
    for (const int end : {route.from, route.to})
      if (!seg_ids.contains(end))
        add(Rule::kTopologyConfig, Severity::kError,
            "route endpoint references undeclared segment " +
                std::to_string(end),
            end, -1, static_cast<int>(i), route.line);
    if (route.from == route.to)
      add(Rule::kTopologyConfig, Severity::kError,
          "route from and to are the same segment — a local channel needs "
          "no gateway and no end-to-end bound",
          route.from, -1, static_cast<int>(i), route.line);
  }
  for (const TopologyStream& ts : spec.streams)
    if (!seg_ids.contains(ts.segment))
      add(Rule::kTopologyConfig, Severity::kError,
          "stream references undeclared segment " +
              std::to_string(ts.segment),
          ts.segment, -1, -1, ts.stream.line);
  for (const auto& [seg, image] : input.calendars) {
    (void)image;
    if (!seg_ids.contains(seg))
      add(Rule::kTopologyConfig, Severity::kWarning,
          "calendar provided for undeclared segment " + std::to_string(seg),
          seg);
  }

  // --- per-segment calendar lint (C-series, tagged with the segment) ----
  if (options.per_segment_lint) {
    for (const SegmentSpec& s : spec.segments) {
      const auto it = input.calendars.find(s.id);
      if (it == input.calendars.end()) continue;
      LintOptions lint_options;
      lint_options.clock_precision = s.precision;
      LintReport seg_report = lint_calendar(it->second, lint_options);
      for (Finding& f : seg_report.findings) {
        f.segment = s.id;
        report.add(std::move(f));
      }
    }
  }

  const Resolved resolved = resolve(spec);

  // --- T002: a bridged etag's link set must be a forest ------------------
  // Gateways re-publish on the far segment, where the next gateway's
  // subscriber picks the event up again; on a cyclic link set (including
  // two parallel links) every instance circulates forever.
  for (const auto& [etag, edges] : resolved.edges) {
    std::map<int, int> dsu;  // segment -> representative
    std::function<int(int)> find = [&](int x) {
      auto it = dsu.find(x);
      if (it == dsu.end()) { dsu[x] = x; return x; }
      if (it->second == x) return x;
      return it->second = find(it->second);
    };
    for (const LinkSpec* l : edges) {
      const int ra = find(l->a);
      const int rb = find(l->b);
      if (ra == rb) {
        add(Rule::kRoutingCycle, Severity::kError,
            "etag " + std::to_string(etag) +
                "'s bridges form a forwarding loop closed by this link — "
                "every event on the etag circulates forever",
            -1, l->id, -1, l->line);
        continue;
      }
      dsu[ra] = rb;
    }
  }

  // --- T004: cross-segment event-tag clashes -----------------------------
  // Everything a bridged etag's component can see shares that tag: an HRT
  // reservation or a local stream on the same etag anywhere in the
  // component is indistinguishable from the forwarded traffic (hardware
  // filters match the etag alone — RTEC-S104's argument, lifted across
  // gateways).
  for (const auto& [etag, edges] : resolved.edges) {
    std::set<int> component;
    for (const LinkSpec* l : edges) {
      component.insert(l->a);
      component.insert(l->b);
    }
    if (etag < kFirstApplicationEtag) {
      add(Rule::kEtagClash, Severity::kWarning,
          "bridging infrastructure etag " + std::to_string(etag) +
              " — sync/binding traffic is segment-local by design",
          -1, edges.front()->id, -1, edges.front()->line);
    }
    for (const int seg : component) {
      const auto cal = input.calendars.find(seg);
      if (cal != input.calendars.end()) {
        for (std::size_t slot = 0; slot < cal->second.slots.size(); ++slot)
          if (cal->second.slots[slot].spec.etag == etag)
            add(Rule::kEtagClash, Severity::kError,
                "bridged etag " + std::to_string(etag) +
                    " collides with an HRT reservation (slot " +
                    std::to_string(slot) +
                    ") — forwarded SRT frames are indistinguishable from "
                    "the reserved channel",
                seg);
      }
      for (const TopologyStream& ts : spec.streams)
        if (ts.segment == seg && ts.stream.etag == etag)
          add(Rule::kEtagClash, Severity::kError,
              "bridged etag " + std::to_string(etag) +
                  " collides with a declared local stream — two unrelated "
                  "event sources share one tag",
              seg, -1, -1, ts.stream.line);
    }
  }

  // --- T005: clock-precision consistency across each link ----------------
  for (const LinkSpec* l : resolved.links) {
    const SegmentSpec* sa = spec.segment_by_id(l->a);
    const SegmentSpec* sb = spec.segment_by_id(l->b);
    const bool have_a = sa != nullptr && sa->precision.has_value();
    const bool have_b = sb != nullptr && sb->precision.has_value();
    if (have_a != have_b) {
      add(Rule::kPrecisionMismatch, Severity::kWarning,
          "segment " + std::to_string(have_a ? l->b : l->a) +
              " declares no clock precision while its link peer does — "
              "cross-segment skew across this gateway is unbounded",
          have_a ? l->b : l->a, l->id, -1, l->line);
    } else if (have_a && have_b) {
      const Duration worst = std::max(*sa->precision, *sb->precision);
      if (l->latency < worst)
        add(Rule::kPrecisionMismatch, Severity::kError,
            "forward latency " + ns_text(l->latency.ns()) +
                " is below the worst clock disagreement " +
                ns_text(worst.ns()) +
                " of its endpoint segments — a release stamp computed on "
                "one timeline is meaningless on the other at this "
                "granularity",
            -1, l->id, -1, l->line);
    }
  }

  // --- T006: forward latency vs the engine's per-link lookahead ----------
  // The conservative engine computes each shard's horizon from its
  // *incoming* links only (per-link lookahead, sim/shard_engine.hpp), so
  // a sub-floor latency no longer throttles the whole topology — it
  // serializes epochs between the link's two endpoint segments, and the
  // warning is scoped accordingly. Zero stays a structural error: the
  // coordinator's progress argument needs strictly positive lookahead on
  // every cross-shard channel, whichever horizon policy is active.
  for (const LinkSpec* l : resolved.links) {
    if (l->latency <= Duration::zero())
      add(Rule::kSerialLookahead, Severity::kError,
          "zero forward latency: the conservative shard engine requires "
          "positive lookahead (a cross-shard handoff channel with zero "
          "latency stalls every epoch)",
          -1, l->id, -1, l->line);
    else if (l->latency < options.serial_lookahead_floor)
      add(Rule::kSerialLookahead, Severity::kWarning,
          "forward latency " + ns_text(l->latency.ns()) +
              " bounds the per-link lookahead between segments " +
              std::to_string(l->a) + " and " + std::to_string(l->b) +
              " below " + ns_text(options.serial_lookahead_floor.ns()) +
              " — their epochs degenerate to near-serial execution (the "
              "rest of the topology is unaffected under per-link horizons)",
          -1, l->id, -1, l->line);
  }

  // --- route paths: T003 reachability + T009 end-to-end bounds -----------
  std::vector<RouteBound> bounds;
  bounds.reserve(spec.routes.size());
  for (std::size_t i = 0; i < spec.routes.size(); ++i)
    bounds.push_back(compose_bound(input, resolved, i));

  for (std::size_t i = 0; i < spec.routes.size(); ++i) {
    const RouteSpec& route = spec.routes[i];
    const RouteBound& rb = bounds[i];
    const bool endpoints_ok = seg_ids.contains(route.from) &&
                              seg_ids.contains(route.to) &&
                              route.from != route.to;
    if (!endpoints_ok) continue;  // RTEC-T001 already reported
    if (!rb.computable) {
      add(Rule::kUnreachableSubscriber, Severity::kError,
          "subscribers on segment " + std::to_string(route.to) +
              " can never receive etag " + std::to_string(route.etag) +
              " published on segment " + std::to_string(route.from) +
              " — no chain of gateways bridges it",
          route.to, -1, static_cast<int>(i), route.line);
      continue;
    }
    if (rb.bound > route.e2e_deadline) {
      std::ostringstream msg;
      msg << "composed worst-case end-to-end latency "
          << ns_text(rb.bound.ns()) << " exceeds the declared deadline "
          << ns_text(route.e2e_deadline.ns()) << " over "
          << rb.segment_ids.size() << " segments / " << rb.link_ids.size()
          << " gateway hops (per hop: transmission deadline "
          << ns_text(route.hop_deadline.ns())
          << " + clock precision, plus each gateway's forward latency)";
      add(Rule::kE2eDeadline, Severity::kError, msg.str(), -1, -1,
          static_cast<int>(i), route.line);
    }
  }

  // --- T012: probabilistic end-to-end miss budget (opt-in) ---------------
  // The worst-case rules above assume the fault budget holds; this rule
  // prices the assumption itself: under each segment's declared per-attempt
  // fault_rate, the convolution engine's (conservative) per-hop deadline-
  // miss probabilities compose by union bound and must stay inside the
  // route's declared miss_target.
  if (options.probabilistic) {
    for (const RouteMiss& rm : route_miss_bounds(input, options)) {
      const RouteSpec& route = spec.routes[rm.route];
      if (!rm.computable || !route.miss_target) continue;
      if (rm.e2e_miss > *route.miss_target) {
        std::ostringstream msg;
        msg << "hop-composed deadline-miss probability " << rm.e2e_miss
            << " exceeds the declared per-instance target "
            << *route.miss_target << " over " << rm.hop_miss.size()
            << " hop(s) (conservative busy-window model under each "
               "segment's fault_rate; includes the convolution tail bound "
            << rm.tail_epsilon << ")";
        add(Rule::kProbE2eMiss, Severity::kError, msg.str(), -1, -1,
            static_cast<int>(rm.route), route.line);
      }
    }
  }

  // --- quantitative budgets: T007 segments, T008 gateway directions ------
  std::map<int, std::optional<SegmentBudget>> budgets;
  for (const int seg : seg_ids) budgets[seg] = segment_budget(input, seg);

  // Transit demand per segment and per link direction, from the resolved
  // route paths. Keyed by (link id, toward-b?) for directions.
  std::map<int, double> transit_util;
  std::map<std::pair<int, bool>, double> direction_util;
  std::map<std::pair<int, bool>, int> direction_routes;
  for (const RouteBound& rb : bounds) {
    if (!rb.computable) continue;
    const RouteSpec& route = spec.routes[rb.route];
    for (std::size_t hop = 0; hop < rb.segment_ids.size(); ++hop) {
      const int seg = rb.segment_ids[hop];
      const auto& budget = budgets[seg];
      const BusConfig bus = budget ? budget->bus : BusConfig{};
      const double cost =
          static_cast<double>(frame_cost(route.dlc, bus).ns()) /
          static_cast<double>(route.period.ns());
      transit_util[seg] += cost;
      if (hop > 0) {
        const LinkSpec* l = *std::find_if(
            resolved.links.begin(), resolved.links.end(),
            [&](const LinkSpec* cand) {
              return cand->id == rb.link_ids[hop - 1];
            });
        const bool toward_b = l->b == seg;
        direction_util[{l->id, toward_b}] += cost;
        ++direction_routes[{l->id, toward_b}];
      }
    }
  }

  for (const int seg : seg_ids) {
    const auto& budget = budgets[seg];
    if (!budget) continue;  // unusable calendar config: C009 reported
    const BusConfig bus = budget->bus;
    double stream_util = 0;
    for (const TopologyStream& ts : spec.streams) {
      if (ts.segment != seg || ts.stream.traffic != TrafficClass::kSrt)
        continue;
      if (ts.stream.period <= Duration::zero()) continue;
      stream_util += static_cast<double>(
                         frame_cost(ts.stream.dlc, bus).ns()) /
                     static_cast<double>(ts.stream.period.ns());
    }
    const double total =
        budget->hrt_fraction + stream_util + transit_util[seg];
    if (total > 1.0 || total > options.warn_utilization) {
      std::ostringstream msg;
      msg << "segment demand " << pct_text(total)
          << " of the bus (HRT reserved " << pct_text(budget->hrt_fraction)
          << ", local SRT " << pct_text(stream_util) << ", forwarded "
          << pct_text(transit_util[seg]) << ")"
          << (total > 1.0 ? " — no schedule exists"
                          : " leaves no engineering margin");
      add(Rule::kSegmentOverload,
          total > 1.0 ? Severity::kError : Severity::kWarning, msg.str(),
          seg);
    }
  }

  for (const auto& [key, demand] : direction_util) {
    const auto& [link_id, toward_b] = key;
    const LinkSpec* l = *std::find_if(
        resolved.links.begin(), resolved.links.end(),
        [&](const LinkSpec* cand) { return cand->id == link_id; });
    const int dest = toward_b ? l->b : l->a;
    const auto& budget = budgets[dest];
    if (!budget) continue;
    // Forwarded traffic is SRT: it lives in the share of the destination
    // bus the HRT calendar leaves unreserved.
    const double capacity = std::max(0.0, 1.0 - budget->hrt_fraction);
    if (demand > capacity || demand > options.warn_utilization * capacity) {
      std::ostringstream msg;
      msg << "forwarded demand toward segment " << dest << " ("
          << direction_routes[key] << " route(s), " << pct_text(demand)
          << " of the bus) "
          << (demand > capacity ? "exceeds" : "nearly exhausts")
          << " the non-reserved share " << pct_text(capacity)
          << " the destination calendar leaves";
      add(Rule::kGatewayOverload,
          demand > capacity ? Severity::kError : Severity::kWarning,
          msg.str(), dest, link_id);
    }
  }

  // --- T010: per-segment EDF feasibility of the composed SRT set ---------
  // Local streams plus every route that transits the segment, each with
  // its per-hop transmission deadline, against the segment's reserved
  // calendar. The demand-bound test is sufficient, not necessary, so a
  // rejection warns (the differential oracle is the empirical follow-up).
  for (const int seg : seg_ids) {
    const auto& budget = budgets[seg];
    if (!budget) continue;
    SrtAnalysisInput edf;
    edf.bus = budget->bus;
    for (const TopologyStream& ts : spec.streams) {
      if (ts.segment != seg || ts.stream.traffic != TrafficClass::kSrt)
        continue;
      SrtStreamSpec s;
      s.id = static_cast<int>(edf.streams.size());
      s.period = ts.stream.period;
      s.deadline = ts.stream.deadline;
      s.dlc = ts.stream.dlc;
      edf.streams.push_back(s);
    }
    for (const RouteBound& rb : bounds) {
      if (!rb.computable) continue;
      const RouteSpec& route = spec.routes[rb.route];
      if (std::find(rb.segment_ids.begin(), rb.segment_ids.end(), seg) ==
          rb.segment_ids.end())
        continue;
      SrtStreamSpec s;
      s.id = static_cast<int>(edf.streams.size());
      s.period = route.period;
      s.deadline = std::min(route.hop_deadline, route.period);
      s.dlc = route.dlc;
      edf.streams.push_back(s);
    }
    if (edf.streams.empty()) continue;

    std::optional<Calendar> calendar;
    const auto cal_it = input.calendars.find(seg);
    if (cal_it != input.calendars.end()) {
      calendar.emplace(cal_it->second.config);
      for (const ImageSlot& slot : cal_it->second.slots)
        (void)calendar->reserve(slot.spec);
      edf.calendar = &*calendar;
    }
    if (const auto verdict = srt_edf_feasibility(edf))
      add(Rule::kHopInfeasible, Severity::kWarning,
          "composed SRT set (local streams + transiting routes) fails the "
          "(sufficient) EDF demand-bound test: " +
              verdict->detail,
          seg);
  }

  return report;
}

}  // namespace rtec::analysis
