#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/topology.hpp"
#include "analysis/verify.hpp"

/// \file oracle.hpp
/// Differential oracle for the topology verifier: builds the declared
/// topology as a real sharded simulation (core/scenario + core/gateway,
/// one shard per segment), publishes every route periodically across its
/// resolved gateway path, measures observed end-to-end latencies, and
/// cross-checks them against the static verdict:
///
///   * an observed latency above a route's composed static bound means the
///     bound derivation is wrong — RTEC-T011, always an error;
///   * a route the verifier admitted (no RTEC-T009) that misses its
///     declared end-to-end deadline in simulation is a false admission —
///     RTEC-T011;
///   * a route that never delivers at all contradicts reachability —
///     RTEC-T011.
///
/// The converse (verifier rejects, simulation happens to meet the
/// deadline) is *not* a disagreement: the static rules are deliberately
/// conservative. Callers who want to confirm a rejection was justified
/// inspect the returned per-route observations directly (the test suite
/// does exactly that with a crafted over-deadline fixture).
///
/// Each publish stamps a sequence number into the payload; the publish
/// instant is recorded in simulation time on the source shard and read
/// back at delivery on the destination shard. The oracle therefore runs
/// its shards sequentially (threads = 1) — same deterministic schedule the
/// differential engine tests pin down, no cross-thread access — which on
/// top makes every run bit-reproducible per seed.

namespace rtec::analysis {

struct OracleOptions {
  /// Each seed varies the publish phase offsets of every route/stream.
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  Duration sim_time = Duration::milliseconds(200);
  /// Static pass the oracle cross-checks (kept identical to the CLI's).
  VerifyOptions verify;
};

/// What one seed's simulation observed for one route.
struct RouteObservation {
  std::size_t route = 0;
  std::uint64_t seed = 0;
  std::uint64_t delivered = 0;              ///< events seen by the subscriber
  Duration max_latency = Duration::zero();  ///< worst observed end-to-end
  Duration bound = Duration::zero();        ///< static bound it is checked against
  bool statically_admitted = true;          ///< no RTEC-T009 on this route
};

struct OracleResult {
  /// False when the topology cannot be built as a simulation (structural
  /// errors, calendars attached, zero-latency links, or beyond the node-id
  /// budget); skip_reason then says why and `report` stays empty.
  bool ran = false;
  std::string skip_reason;
  /// RTEC-T011 findings; empty after a run = verifier and simulator agree.
  LintReport report;
  std::vector<RouteObservation> observations;
};

[[nodiscard]] OracleResult run_differential_oracle(
    const TopologyInput& input, const OracleOptions& options = {});

}  // namespace rtec::analysis
